#include "repro/matrices.hpp"

#include <cmath>
#include <cstdio>

#include "sparse/generators.hpp"
#include "util/check.hpp"

namespace rpcg::repro {

namespace {

Index scaled_dim(double paper_value, double scale, double exponent) {
  // Grid dimension so that the total size is ~paper_value / scale.
  const double target = paper_value / scale;
  return std::max<Index>(4, static_cast<Index>(std::llround(std::pow(target, exponent))));
}

}  // namespace

ReproMatrix make_matrix(int index, double scale) {
  RPCG_CHECK(index >= 1 && index <= 8, "matrix index must be in 1..8");
  RPCG_CHECK(scale >= 1.0, "scale must be >= 1");
  ReproMatrix m;
  // Formatted without std::string concatenation: "M" + std::to_string(...)
  // trips GCC 12's -Wrestrict false positive at -O2 (GCC PR105329).
  char id_buf[16];
  std::snprintf(id_buf, sizeof id_buf, "M%d", index);
  m.id = id_buf;
  switch (index) {
    case 1: {  // parabolic_fem: 2-D FEM, ~7 nnz/row
      m.paper_name = "parabolic_fem";
      m.problem_type = "Fluid dynamics";
      m.paper_n = 525825;
      m.paper_nnz = 3674625;
      const Index g = scaled_dim(static_cast<double>(m.paper_n), scale, 0.5);
      m.matrix = fem2d_p1(g, g);
      break;
    }
    case 2: {  // offshore: irregular electromagnetics, ~16 nnz/row
      m.paper_name = "offshore";
      m.problem_type = "Electromagnetics";
      m.paper_n = 259789;
      m.paper_nnz = 4242673;
      const auto n = static_cast<Index>(static_cast<double>(m.paper_n) / scale);
      m.matrix = random_spd(n, 16, 0.7, std::max<Index>(64, n / 50), 0xA2);
      break;
    }
    case 3: {  // G3_circuit: circuit, ~4.8 nnz/row, long-range couplings
      m.paper_name = "G3_circuit";
      m.problem_type = "Circuit simulation";
      m.paper_n = 1585478;
      m.paper_nnz = 7660826;
      const Index g = scaled_dim(static_cast<double>(m.paper_n), scale, 0.5);
      m.matrix = circuit_like(g, g, 0.02, 0xA3);
      break;
    }
    case 4: {  // thermal2: 3-D thermal, ~7 nnz/row
      m.paper_name = "thermal2";
      m.problem_type = "Thermal";
      m.paper_n = 1228045;
      m.paper_nnz = 8580313;
      const Index g = scaled_dim(static_cast<double>(m.paper_n), scale, 1.0 / 3.0);
      m.matrix = poisson3d_7pt(g, g, g);
      break;
    }
    case 5: {  // Emilia_923: structural, ~43.7 nnz/row
      m.paper_name = "Emilia_923";
      m.problem_type = "Structural";
      m.paper_n = 923136;
      m.paper_nnz = 40373538;
      const Index g =
          scaled_dim(static_cast<double>(m.paper_n) / 3.0, scale, 1.0 / 3.0);
      m.matrix = elasticity3d(g, g, g, Stencil3d::kFacesCorners14, 0.02, 0xA5);
      break;
    }
    case 6: {  // Geo_1438: structural, ~41.9 nnz/row
      m.paper_name = "Geo_1438";
      m.problem_type = "Structural";
      m.paper_n = 1437960;
      m.paper_nnz = 60236322;
      const Index g =
          scaled_dim(static_cast<double>(m.paper_n) / 3.0, scale, 1.0 / 3.0);
      m.matrix = elasticity3d(g, g, g, Stencil3d::kFacesCorners14, 0.08, 0xA6);
      break;
    }
    case 7: {  // Serena: structural, ~46.1 nnz/row
      m.paper_name = "Serena";
      m.problem_type = "Structural";
      m.paper_n = 1391349;
      m.paper_nnz = 64131971;
      const Index g =
          scaled_dim(static_cast<double>(m.paper_n) / 3.0, scale, 1.0 / 3.0);
      m.matrix = elasticity3d(g, g, g, Stencil3d::kFacesEdges18, 0.15, 0xA7);
      break;
    }
    case 8: {  // audikw_1: structural, ~82.3 nnz/row, dense band
      m.paper_name = "audikw_1";
      m.problem_type = "Structural";
      m.paper_n = 943695;
      m.paper_nnz = 77651847;
      const Index g =
          scaled_dim(static_cast<double>(m.paper_n) / 3.0, scale, 1.0 / 3.0);
      m.matrix = elasticity3d(g, g, g, Stencil3d::kFull26, 0.0, 0xA8);
      break;
    }
    default:
      break;
  }
  return m;
}

std::vector<ReproMatrix> make_all_matrices(double scale) {
  std::vector<ReproMatrix> out;
  out.reserve(8);
  for (int i = 1; i <= 8; ++i) out.push_back(make_matrix(i, scale));
  return out;
}

}  // namespace rpcg::repro
