#include "repro/harness.hpp"

#include <cmath>

#include "engine/registry.hpp"
#include "util/check.hpp"

namespace rpcg::repro {

std::string to_string(FailureLocation loc) { return enum_to_string(loc); }

double overhead_pct(double t, double t_ref) {
  RPCG_CHECK(t_ref > 0.0, "reference time must be positive");
  return 100.0 * (t - t_ref) / t_ref;
}

namespace {

// Right-hand side from a known smooth solution x*, so b = A x*; the solver
// starts from x0 = 0 and the relative residual target is well defined.
std::vector<double> smooth_solution(Index n) {
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i)
    x_true[static_cast<std::size_t>(i)] =
        1.0 + std::sin(0.01 * static_cast<double>(i));
  return x_true;
}

}  // namespace

ExperimentRunner::ExperimentRunner(const CsrMatrix& a, ExperimentConfig cfg)
    : cfg_(cfg),
      problem_(engine::ProblemBuilder()
                   .borrow_matrix(a)
                   .nodes(cfg.num_nodes)
                   .preconditioner(cfg.precond)
                   .rhs_from_solution(smooth_solution(a.rows()))
                   .comm(cfg.comm)
                   .build()) {}

engine::SolverConfig ExperimentRunner::base_config() const {
  engine::SolverConfig c;
  c.rtol = cfg_.rtol;
  c.max_iterations = cfg_.max_iterations;
  c.strategy = cfg_.strategy;
  c.esr.local_rtol = cfg_.local_rtol;
  c.exec = cfg_.exec;
  return c;
}

engine::SolveReport ExperimentRunner::run_solver(
    const std::string& solver_name, const engine::SolverConfig& config,
    const FailureSchedule& schedule, std::uint64_t rep_seed) {
  problem_.set_noise(cfg_.noise_cv, rep_seed);
  const auto solver = engine::SolverRegistry::instance().create(solver_name,
                                                                config);
  DistVector x = problem_.make_x();
  return solver->solve(problem_, x, schedule);
}

engine::SolveReport ExperimentRunner::run_reference(std::uint64_t rep_seed) {
  return run_solver("resilient-pcg", base_config(), {}, rep_seed);
}

engine::SolveReport ExperimentRunner::run_undisturbed(int phi,
                                                      std::uint64_t rep_seed) {
  engine::SolverConfig c = base_config();
  c.recovery = RecoveryMethod::kEsr;
  c.phi = phi;
  return run_solver("resilient-pcg", c, {}, rep_seed);
}

engine::SolveReport ExperimentRunner::run_with_failures(int phi, int psi,
                                                        FailureLocation loc,
                                                        double progress,
                                                        std::uint64_t rep_seed) {
  RPCG_CHECK(psi >= 1 && psi <= phi, "need 1 <= psi <= phi");
  const FailureSchedule schedule = FailureSchedule::contiguous(
      failure_iteration(progress), first_rank(loc), psi);
  engine::SolverConfig c = base_config();
  c.recovery = RecoveryMethod::kEsr;
  c.phi = phi;
  return run_solver("resilient-pcg", c, schedule, rep_seed);
}

engine::SolveReport ExperimentRunner::run_baseline(RecoveryMethod method,
                                                   int psi, FailureLocation loc,
                                                   double progress,
                                                   int checkpoint_interval,
                                                   std::uint64_t rep_seed) {
  const FailureSchedule schedule = FailureSchedule::contiguous(
      failure_iteration(progress), first_rank(loc), psi);
  engine::SolverConfig c = base_config();
  c.recovery = method;
  c.checkpoint_interval = checkpoint_interval;
  return run_solver("resilient-pcg", c, schedule, rep_seed);
}

engine::SolveReport ExperimentRunner::run_baseline_failure_free(
    RecoveryMethod method, int checkpoint_interval, std::uint64_t rep_seed) {
  engine::SolverConfig c = base_config();
  c.recovery = method;
  c.checkpoint_interval = checkpoint_interval;
  return run_solver("resilient-pcg", c, {}, rep_seed);
}

engine::SolveReport ExperimentRunner::run_with_schedule(
    int phi, const FailureSchedule& schedule, std::uint64_t rep_seed) {
  engine::SolverConfig c = base_config();
  c.recovery = RecoveryMethod::kEsr;
  c.phi = phi;
  return run_solver("resilient-pcg", c, schedule, rep_seed);
}

int ExperimentRunner::reference_iterations() {
  if (reference_iterations_ < 0) {
    const double cv = problem_.noise_cv();
    const std::uint64_t seed = problem_.noise_seed();
    problem_.set_noise(0.0, 0);  // noise-free placement run
    const auto solver = engine::SolverRegistry::instance().create(
        "resilient-pcg", base_config());
    DistVector x = problem_.make_x();
    const auto res = solver->solve(problem_, x, {});
    problem_.set_noise(cv, seed);
    RPCG_CHECK(res.converged, "reference run did not converge");
    reference_iterations_ = res.iterations;
  }
  return reference_iterations_;
}

int ExperimentRunner::failure_iteration(double progress) {
  RPCG_CHECK(progress > 0.0 && progress < 1.0, "progress must be in (0,1)");
  const int it = static_cast<int>(progress * reference_iterations());
  return std::max(1, it);
}

}  // namespace rpcg::repro
