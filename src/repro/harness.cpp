#include "repro/harness.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rpcg::repro {

std::string to_string(FailureLocation loc) {
  return loc == FailureLocation::kStart ? "start" : "center";
}

double overhead_pct(double t, double t_ref) {
  RPCG_CHECK(t_ref > 0.0, "reference time must be positive");
  return 100.0 * (t - t_ref) / t_ref;
}

ExperimentRunner::ExperimentRunner(const CsrMatrix& a, ExperimentConfig cfg)
    : a_(&a),
      cfg_(cfg),
      partition_(Partition::block_rows(a.rows(), cfg.num_nodes)),
      a_dist_(DistMatrix::distribute(a, partition_)),
      m_(make_preconditioner(cfg.precond, a, partition_)),
      b_(partition_) {
  // Right-hand side from a known smooth solution x*, so b = A x*; the solver
  // starts from x0 = 0 and the relative residual target is well defined.
  std::vector<double> x_true(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i)
    x_true[static_cast<std::size_t>(i)] =
        1.0 + std::sin(0.01 * static_cast<double>(i));
  std::vector<double> b(static_cast<std::size_t>(a.rows()));
  a.spmv(x_true, b);
  b_.set_global(b);
}

ResilientPcgResult ExperimentRunner::run(const ResilientPcgOptions& opts,
                                         const FailureSchedule& schedule,
                                         std::uint64_t rep_seed) {
  Cluster cluster(partition_, CommParams{});
  cluster.clock().set_noise(cfg_.noise_cv, rep_seed);
  ResilientPcg solver(cluster, *a_, a_dist_, *m_, opts);
  DistVector x(partition_);
  return solver.solve(b_, x, schedule);
}

ResilientPcgResult ExperimentRunner::run_reference(std::uint64_t rep_seed) {
  ResilientPcgOptions opts;
  opts.pcg.rtol = cfg_.rtol;
  opts.pcg.max_iterations = cfg_.max_iterations;
  opts.method = RecoveryMethod::kNone;
  return run(opts, {}, rep_seed);
}

ResilientPcgResult ExperimentRunner::run_undisturbed(int phi,
                                                     std::uint64_t rep_seed) {
  ResilientPcgOptions opts;
  opts.pcg.rtol = cfg_.rtol;
  opts.pcg.max_iterations = cfg_.max_iterations;
  opts.method = RecoveryMethod::kEsr;
  opts.phi = phi;
  opts.strategy = cfg_.strategy;
  opts.esr.local_rtol = cfg_.local_rtol;
  return run(opts, {}, rep_seed);
}

ResilientPcgResult ExperimentRunner::run_with_failures(int phi, int psi,
                                                       FailureLocation loc,
                                                       double progress,
                                                       std::uint64_t rep_seed) {
  RPCG_CHECK(psi >= 1 && psi <= phi, "need 1 <= psi <= phi");
  const FailureSchedule schedule = FailureSchedule::contiguous(
      failure_iteration(progress), first_rank(loc), psi);
  ResilientPcgOptions opts;
  opts.pcg.rtol = cfg_.rtol;
  opts.pcg.max_iterations = cfg_.max_iterations;
  opts.method = RecoveryMethod::kEsr;
  opts.phi = phi;
  opts.strategy = cfg_.strategy;
  opts.esr.local_rtol = cfg_.local_rtol;
  return run(opts, schedule, rep_seed);
}

ResilientPcgResult ExperimentRunner::run_baseline(RecoveryMethod method, int psi,
                                                  FailureLocation loc,
                                                  double progress,
                                                  int checkpoint_interval,
                                                  std::uint64_t rep_seed) {
  const FailureSchedule schedule = FailureSchedule::contiguous(
      failure_iteration(progress), first_rank(loc), psi);
  ResilientPcgOptions opts;
  opts.pcg.rtol = cfg_.rtol;
  opts.pcg.max_iterations = cfg_.max_iterations;
  opts.method = method;
  opts.checkpoint_interval = checkpoint_interval;
  opts.esr.local_rtol = cfg_.local_rtol;
  return run(opts, schedule, rep_seed);
}

ResilientPcgResult ExperimentRunner::run_baseline_failure_free(
    RecoveryMethod method, int checkpoint_interval, std::uint64_t rep_seed) {
  ResilientPcgOptions opts;
  opts.pcg.rtol = cfg_.rtol;
  opts.pcg.max_iterations = cfg_.max_iterations;
  opts.method = method;
  opts.checkpoint_interval = checkpoint_interval;
  opts.esr.local_rtol = cfg_.local_rtol;
  return run(opts, {}, rep_seed);
}

ResilientPcgResult ExperimentRunner::run_with_schedule(
    int phi, const FailureSchedule& schedule, std::uint64_t rep_seed) {
  ResilientPcgOptions opts;
  opts.pcg.rtol = cfg_.rtol;
  opts.pcg.max_iterations = cfg_.max_iterations;
  opts.method = RecoveryMethod::kEsr;
  opts.phi = phi;
  opts.strategy = cfg_.strategy;
  opts.esr.local_rtol = cfg_.local_rtol;
  return run(opts, schedule, rep_seed);
}

int ExperimentRunner::reference_iterations() {
  if (reference_iterations_ < 0) {
    Cluster cluster(partition_, CommParams{});  // noise-free
    ResilientPcgOptions opts;
    opts.pcg.rtol = cfg_.rtol;
    opts.pcg.max_iterations = cfg_.max_iterations;
    ResilientPcg solver(cluster, *a_, a_dist_, *m_, opts);
    DistVector x(partition_);
    const auto res = solver.solve(b_, x, {});
    RPCG_CHECK(res.converged, "reference run did not converge");
    reference_iterations_ = res.iterations;
  }
  return reference_iterations_;
}

int ExperimentRunner::failure_iteration(double progress) {
  RPCG_CHECK(progress > 0.0 && progress < 1.0, "progress must be in (0,1)");
  const int it = static_cast<int>(progress * reference_iterations());
  return std::max(1, it);
}

}  // namespace rpcg::repro
