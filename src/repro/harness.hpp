// The experiment runner behind every table/figure bench: builds the
// distributed problem once, then executes reference / undisturbed /
// with-failure runs following the paper's protocol (failures in contiguous
// ranks at "start" = rank 0 or "center" = rank N/2, injected at 20/50/80 %
// of the reference iteration count, repeated with deterministic noise
// seeds).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/resilient_pcg.hpp"
#include "repro/matrices.hpp"
#include "util/stats.hpp"

namespace rpcg::repro {

struct ExperimentConfig {
  int num_nodes = 128;            ///< the paper's VSC3 node count
  std::string precond = "bjacobi";
  double rtol = 1e-8;             ///< paper's termination criterion
  double local_rtol = 1e-14;      ///< paper's reconstruction tolerance
  int reps = 3;                   ///< repetitions per configuration
  double noise_cv = 0.02;         ///< timing jitter (box-plot spread)
  BackupStrategy strategy = BackupStrategy::kPaperAlternating;
  int max_iterations = 200000;
};

/// Where the contiguous failed ranks start (paper Sec. 7.1).
enum class FailureLocation { kStart, kCenter };

[[nodiscard]] std::string to_string(FailureLocation loc);

class ExperimentRunner {
 public:
  /// The matrix reference must outlive the runner.
  ExperimentRunner(const CsrMatrix& a, ExperimentConfig cfg);

  /// Reference (non-resilient, non-redundant) PCG run.
  ResilientPcgResult run_reference(std::uint64_t rep_seed);

  /// ESR-capable run with phi redundant copies and no failures
  /// ("relative overhead undisturbed" column of Table 2).
  ResilientPcgResult run_undisturbed(int phi, std::uint64_t rep_seed);

  /// ESR run with psi <= phi simultaneous failures at `progress` (fraction
  /// of the reference iteration count) in contiguous ranks at `loc`.
  ResilientPcgResult run_with_failures(int phi, int psi, FailureLocation loc,
                                       double progress, std::uint64_t rep_seed);

  /// Same failure protocol under a baseline method (checkpoint/restart or
  /// interpolation-restart); psi failures, no redundant copies.
  ResilientPcgResult run_baseline(RecoveryMethod method, int psi,
                                  FailureLocation loc, double progress,
                                  int checkpoint_interval,
                                  std::uint64_t rep_seed);

  /// Failure-free run under a baseline method (shows e.g. the checkpoint
  /// cost that accrues even without failures).
  ResilientPcgResult run_baseline_failure_free(RecoveryMethod method,
                                               int checkpoint_interval,
                                               std::uint64_t rep_seed);

  /// Run with an arbitrary schedule (overlapping-failure studies).
  ResilientPcgResult run_with_schedule(int phi, const FailureSchedule& schedule,
                                       std::uint64_t rep_seed);

  /// Noise-free reference iteration count (cached; used to place failures).
  [[nodiscard]] int reference_iterations();

  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] const DistVector& rhs() const { return b_; }
  [[nodiscard]] const DistMatrix& matrix() const { return a_dist_; }
  [[nodiscard]] const CsrMatrix& matrix_global() const { return *a_; }
  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }
  [[nodiscard]] const Preconditioner& preconditioner() const { return *m_; }

  /// First failing rank for the paper's two placements.
  [[nodiscard]] NodeId first_rank(FailureLocation loc) const {
    return loc == FailureLocation::kStart ? 0 : cfg_.num_nodes / 2;
  }

  /// Failure iteration for a progress fraction (paper: 20/50/80 %).
  [[nodiscard]] int failure_iteration(double progress);

 private:
  [[nodiscard]] ResilientPcgResult run(const ResilientPcgOptions& opts,
                                       const FailureSchedule& schedule,
                                       std::uint64_t rep_seed);

  const CsrMatrix* a_;
  ExperimentConfig cfg_;
  Partition partition_;
  DistMatrix a_dist_;
  std::unique_ptr<Preconditioner> m_;
  DistVector b_;
  int reference_iterations_ = -1;
};

/// Relative overhead in percent: 100 * (t - t_ref) / t_ref.
[[nodiscard]] double overhead_pct(double t, double t_ref);

}  // namespace rpcg::repro
