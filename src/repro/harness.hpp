// The experiment runner behind every table/figure bench: builds the
// distributed problem once (as an engine::Problem bundle), then executes
// reference / undisturbed / with-failure runs following the paper's
// protocol (failures in contiguous ranks at "start" = rank 0 or "center" =
// rank N/2, injected at 20/50/80 % of the reference iteration count,
// repeated with deterministic noise seeds). All runs go through the
// engine's SolverRegistry and return structured SolveReports.
#pragma once

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "core/resilient_pcg.hpp"
#include "engine/problem.hpp"
#include "engine/solve_report.hpp"
#include "engine/solver.hpp"
#include "repro/matrices.hpp"
#include "util/enum_names.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace rpcg::repro {

struct ExperimentConfig {
  int num_nodes = 128;            ///< the paper's VSC3 node count
  std::string precond = "bjacobi";
  double rtol = 1e-8;             ///< paper's termination criterion
  double local_rtol = 1e-14;      ///< paper's reconstruction tolerance
  int reps = 3;                   ///< repetitions per configuration
  double noise_cv = 0.02;         ///< timing jitter (box-plot spread)
  BackupStrategy strategy = BackupStrategy::kPaperAlternating;
  int max_iterations = 200000;
  /// Host-side execution of the simulator's per-node loops; threaded runs
  /// are bit-for-bit identical to sequential ones (determinism battery).
  ExecutionPolicy exec;
  /// Interconnect cost model of the minted clusters (VSC3-like defaults).
  /// The comm-bound studies sweep latency_s through this.
  CommParams comm;
};

/// Where the contiguous failed ranks start (paper Sec. 7.1).
enum class FailureLocation { kStart, kCenter };

[[nodiscard]] std::string to_string(FailureLocation loc);

}  // namespace rpcg::repro

namespace rpcg {

template <>
struct EnumNames<repro::FailureLocation> {
  static constexpr const char* context = "failure location";
  static constexpr std::array<std::pair<repro::FailureLocation, const char*>,
                              2>
      table{{{repro::FailureLocation::kStart, "start"},
             {repro::FailureLocation::kCenter, "center"}}};
};

}  // namespace rpcg

namespace rpcg::repro {

class ExperimentRunner {
 public:
  /// The matrix reference must outlive the runner (the Problem borrows it).
  ExperimentRunner(const CsrMatrix& a, ExperimentConfig cfg);

  /// Reference (non-resilient, non-redundant) PCG run.
  engine::SolveReport run_reference(std::uint64_t rep_seed);

  /// ESR-capable run with phi redundant copies and no failures
  /// ("relative overhead undisturbed" column of Table 2).
  engine::SolveReport run_undisturbed(int phi, std::uint64_t rep_seed);

  /// ESR run with psi <= phi simultaneous failures at `progress` (fraction
  /// of the reference iteration count) in contiguous ranks at `loc`.
  engine::SolveReport run_with_failures(int phi, int psi, FailureLocation loc,
                                        double progress,
                                        std::uint64_t rep_seed);

  /// Same failure protocol under a baseline method (checkpoint/restart or
  /// interpolation-restart); psi failures, no redundant copies.
  engine::SolveReport run_baseline(RecoveryMethod method, int psi,
                                   FailureLocation loc, double progress,
                                   int checkpoint_interval,
                                   std::uint64_t rep_seed);

  /// Failure-free run under a baseline method (shows e.g. the checkpoint
  /// cost that accrues even without failures).
  engine::SolveReport run_baseline_failure_free(RecoveryMethod method,
                                                int checkpoint_interval,
                                                std::uint64_t rep_seed);

  /// Run with an arbitrary schedule (overlapping-failure studies).
  engine::SolveReport run_with_schedule(int phi, const FailureSchedule& schedule,
                                        std::uint64_t rep_seed);

  /// Runs an arbitrary registry solver under the paper's noise protocol —
  /// the escape hatch the extension benches use for BiCGSTAB/stationary.
  engine::SolveReport run_solver(const std::string& solver_name,
                                 const engine::SolverConfig& config,
                                 const FailureSchedule& schedule,
                                 std::uint64_t rep_seed);

  /// Noise-free reference iteration count (cached; used to place failures).
  [[nodiscard]] int reference_iterations();

  /// The problem bundle every run executes against (matrix, partition,
  /// preconditioner, RHS); mutable so callers can retune noise.
  [[nodiscard]] engine::Problem& problem() { return problem_; }
  [[nodiscard]] const engine::Problem& problem() const { return problem_; }

  [[nodiscard]] const Partition& partition() const {
    return problem_.partition();
  }
  [[nodiscard]] const DistVector& rhs() const { return problem_.rhs(); }
  [[nodiscard]] const DistMatrix& matrix() const { return problem_.matrix(); }
  [[nodiscard]] const CsrMatrix& matrix_global() const {
    return problem_.matrix_global();
  }
  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }
  [[nodiscard]] const Preconditioner& preconditioner() const {
    return problem_.preconditioner();
  }

  /// First failing rank for the paper's two placements.
  [[nodiscard]] NodeId first_rank(FailureLocation loc) const {
    return loc == FailureLocation::kStart ? 0 : cfg_.num_nodes / 2;
  }

  /// Failure iteration for a progress fraction (paper: 20/50/80 %).
  [[nodiscard]] int failure_iteration(double progress);

  /// The experiment-wide solver config (rtol, iteration cap, backup
  /// strategy, reconstruction tolerance) before per-run adjustments.
  [[nodiscard]] engine::SolverConfig base_config() const;

 private:
  ExperimentConfig cfg_;
  engine::Problem problem_;
  int reference_iterations_ = -1;
};

/// Relative overhead in percent: 100 * (t - t_ref) / t_ref.
[[nodiscard]] double overhead_pct(double t, double t_ref);

}  // namespace rpcg::repro
