// Built-in solver and preconditioner registrations: the adapters that put
// the four solver families behind the uniform engine::Solver interface.
//
// Each adapter translates SolverConfig into the family's native options,
// mints a fresh cluster from the Problem, runs the family's engine, and
// wraps the native result into a SolveReport. Adding a family is one more
// adapter + one register_solver() line here — nothing else in the repo
// needs to know about it.
#include <memory>
#include <string>

#include "core/checkpoint_recovery.hpp"
#include "core/errors.hpp"
#include "core/failure_scenario.hpp"
#include "core/pipelined_pcg.hpp"
#include "core/resilient_bicgstab.hpp"
#include "core/resilient_pcg.hpp"
#include "core/twin_pcg.hpp"
#include "engine/registry.hpp"
#include "solver/pcg.hpp"
#include "solver/stationary.hpp"
#include "util/check.hpp"

namespace rpcg::engine {

namespace {

/// Fresh cluster with the SolverConfig's execution policy layered over the
/// Problem's default: the config can switch threading on and/or cap the
/// workers for this solve (each field overrides only when set away from its
/// default), so "--workers 4" alone caps a threaded Problem default instead
/// of silently forcing it sequential. Switching threading *off* against a
/// threaded Problem default is the Problem's own knob
/// (set_execution_policy), not the config's.
Cluster make_cluster(const Problem& problem, const SolverConfig& config) {
  Cluster cluster = problem.make_cluster();
  ExecutionPolicy policy = cluster.execution_policy();
  if (config.exec.mode != ExecMode::kSequential) policy.mode = config.exec.mode;
  if (config.exec.workers != 0) policy.workers = config.exec.workers;
  cluster.set_execution_policy(policy);
  return cluster;
}

/// Wires the Problem's factorization cache (or nullptr when the config
/// opts out) plus its memoized matrix content key into the ESR options —
/// solvers must never force esr_solve_lost_x to re-derive the key.
void wire_esr_cache(EsrOptions& esr, Problem& problem,
                    const SolverConfig& config) {
  esr.cache = config.factorization_cache ? &problem.factorization_cache()
                                         : nullptr;
  if (esr.cache != nullptr) esr.matrix_key = problem.matrix_key();
}

/// Snapshot the Problem's cache counters into the report when the config
/// opts in (solvers that can route ESR setups through the cache only).
/// A solve that bypassed the cache (factorization_cache = false) gets no
/// block at all — an all-zero snapshot would read as "cache ran with zero
/// traffic" instead of "cache was off".
void attach_cache_stats(SolveReport& rep, Problem& problem,
                        const SolverConfig& config) {
  if (!config.report_cache_stats || !config.factorization_cache) return;
  rep.cache_stats = problem.factorization_cache().stats();
  rep.report_cache_stats = true;
}

/// Renders the deadline-miss message once, so the hook-based and post-run
/// enforcement paths cannot drift apart on wording.
std::string deadline_message(double deadline, double clock_total,
                             int iterations) {
  return "simulated-time deadline exceeded: clock at " +
         std::to_string(clock_total) + "s > " + std::to_string(deadline) +
         "s after " + std::to_string(iterations) + " iteration(s)";
}

/// Layers the config's simulated-time deadline over its event hooks: the
/// wrapped on_iteration throws BudgetExceeded the first time the cluster
/// clock passes the deadline. Cooperative — checked between iterations, so
/// the engines need no deadline knowledge — and deterministic, because the
/// clock is simulated time, not wall time. The returned bundle captures
/// `cluster` by reference; it must not outlive the adapter's solve call.
SolverEvents deadline_events(const SolverConfig& config, Cluster& cluster) {
  if (config.deadline_sim_seconds <= 0.0) return config.events;
  SolverEvents events = config.events;
  events.on_iteration = [inner = config.events.on_iteration, &cluster,
                         deadline = config.deadline_sim_seconds](
                            const IterationSnapshot& snap) {
    if (inner) inner(snap);
    const double total = cluster.clock().total();
    if (total > deadline) {
      throw BudgetExceeded(deadline_message(deadline, total, snap.iteration));
    }
  };
  return events;
}

/// Post-run deadline check for the hook-less reference "pcg": same outcome
/// class as the cooperative path, minus the early abort.
void enforce_deadline(const SolverConfig& config, const Cluster& cluster,
                      int iterations) {
  const double deadline = config.deadline_sim_seconds;
  if (deadline <= 0.0) return;
  const double total = cluster.clock().total();
  if (total > deadline) {
    throw BudgetExceeded(deadline_message(deadline, total, iterations));
  }
}

/// The schedule a resilient solve actually runs: an explicit schedule wins;
/// otherwise a configured scenario generates one for this cluster size.
/// `forbid_pair_shift` lets a family overlay its own coverage constraint
/// (twin-pcg forbids buddy pairs) without the caller knowing it.
FailureSchedule effective_schedule(const SolverConfig& config,
                                   const FailureSchedule& schedule,
                                   int num_nodes, int forbid_pair_shift = 0) {
  if (!schedule.empty() || config.scenario.kind == ScenarioKind::kNone)
    return schedule;
  FailureScenarioConfig scenario = config.scenario;
  if (forbid_pair_shift > 0) scenario.forbid_pair_shift = forbid_pair_shift;
  return generate_scenario(scenario, num_nodes);
}

/// Stamps the scenario block into the report when the config opts in and a
/// scenario was actually configured (an explicit-schedule solve gets no
/// block — it would describe events the solve never ran).
void attach_scenario(SolveReport& rep, const SolverConfig& config,
                     const FailureSchedule& ran) {
  if (!config.report_scenario ||
      config.scenario.kind == ScenarioKind::kNone) {
    return;
  }
  rep.scenario_kind = to_string(config.scenario.kind);
  rep.scenario_seed = config.scenario.seed;
  rep.scenario_events = static_cast<int>(ran.events().size());
  rep.report_scenario = true;
}

/// The reference (non-resilient) PCG, wrapping the legacy pcg_solve free
/// function unchanged — it is the bit-for-bit baseline the resilient
/// engine is tested against, so it must stay exactly that code path.
class PcgSolver final : public Solver {
 public:
  explicit PcgSolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "pcg"; }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    RPCG_CHECK(schedule.empty(),
               "the reference 'pcg' solver tolerates no failures; use "
               "'resilient-pcg'");
    Cluster cluster = make_cluster(problem, config_);
    PcgOptions opts;
    opts.rtol = config_.rtol;
    opts.max_iterations = config_.max_iterations;
    const PcgResult res = pcg_solve(cluster, problem.matrix(),
                                    problem.preconditioner(), problem.rhs(), x,
                                    opts);
    enforce_deadline(config_, cluster, res.iterations);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.reductions = cluster.reduction_times();
    return rep;
  }

 private:
  SolverConfig config_;
};

class ResilientPcgSolver final : public Solver {
 public:
  explicit ResilientPcgSolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "resilient-pcg"; }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    const FailureSchedule sched =
        effective_schedule(config_, schedule, cluster.num_nodes());
    ResilientPcgOptions opts;
    opts.pcg.rtol = config_.rtol;
    opts.pcg.max_iterations = config_.max_iterations;
    opts.method = config_.recovery;
    opts.phi = config_.phi;
    opts.strategy = config_.strategy;
    opts.strategy_seed = config_.strategy_seed;
    opts.esr = config_.esr;
    wire_esr_cache(opts.esr, problem, config_);
    opts.checkpoint_interval = config_.checkpoint_interval;
    opts.events = deadline_events(config_, cluster);
    ResilientPcg engine(cluster, problem.matrix_global(), problem.matrix(),
                        problem.preconditioner(), opts);
    const ResilientPcgResult res = engine.solve(problem.rhs(), x, sched);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.redundancy_overhead_per_iteration =
        engine.redundancy_overhead_per_iteration();
    rep.reductions = cluster.reduction_times();
    attach_cache_stats(rep, problem, config_);
    attach_scenario(rep, config_, sched);
    return rep;
  }

 private:
  SolverConfig config_;
};

/// Communication-hiding Krylov methods (core/pipelined_pcg.hpp). One engine
/// serves four registry keys — {CG, CR} x {plain, resilient}: the plain keys
/// ("pipelined-pcg", "pipelined-cr") pin phi = 0 and reject failure
/// schedules; the resilient ones wire in the ESR configuration. All opt into
/// the reduction_time block of the report JSON — overlap accounting is the
/// point of the pipelined family — and honor config.pipeline_depth.
class PipelinedSolver final : public Solver {
 public:
  PipelinedSolver(const SolverConfig& config, PipelinedMethod method,
                  bool resilient)
      : config_(config), method_(method), resilient_(resilient) {}

  [[nodiscard]] std::string name() const override {
    if (method_ == PipelinedMethod::kConjugateGradient)
      return resilient_ ? "pipelined-resilient-pcg" : "pipelined-pcg";
    return resilient_ ? "pipelined-resilient-cr" : "pipelined-cr";
  }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    if (!resilient_) {
      RPCG_CHECK(schedule.empty(),
                 "'" + name() + "' tolerates no failures; use "
                 "'pipelined-resilient-" +
                     (method_ == PipelinedMethod::kConjugateGradient ? "pcg"
                                                                     : "cr") +
                     "'");
    }
    Cluster cluster = make_cluster(problem, config_);
    const FailureSchedule sched =
        resilient_ ? effective_schedule(config_, schedule, cluster.num_nodes())
                   : schedule;
    PipelinedPcgOptions opts;
    opts.pcg.rtol = config_.rtol;
    opts.pcg.max_iterations = config_.max_iterations;
    opts.method = method_;
    opts.depth = config_.pipeline_depth;
    if (resilient_) {
      opts.phi = config_.phi;
      opts.strategy = config_.strategy;
      opts.strategy_seed = config_.strategy_seed;
      opts.esr = config_.esr;
      wire_esr_cache(opts.esr, problem, config_);
    }
    opts.events = deadline_events(config_, cluster);
    PipelinedPcg engine(cluster, problem.matrix_global(), problem.matrix(),
                        problem.preconditioner(), opts);
    const ResilientPcgResult res = engine.solve(problem.rhs(), x, sched);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.redundancy_overhead_per_iteration =
        engine.redundancy_overhead_per_iteration();
    rep.reductions = cluster.reduction_times();
    rep.report_reductions = true;
    rep.reduction_depth = config_.pipeline_depth;
    attach_cache_stats(rep, problem, config_);
    if (resilient_) attach_scenario(rep, config_, sched);
    return rep;
  }

 private:
  SolverConfig config_;
  PipelinedMethod method_;
  bool resilient_;
};

class BicgstabSolver final : public Solver {
 public:
  explicit BicgstabSolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override {
    return "resilient-bicgstab";
  }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    const FailureSchedule sched =
        effective_schedule(config_, schedule, cluster.num_nodes());
    BicgstabOptions opts;
    opts.rtol = config_.rtol;
    opts.max_iterations = config_.max_iterations;
    opts.phi = config_.phi;
    opts.strategy = config_.strategy;
    opts.strategy_seed = config_.strategy_seed;
    opts.esr = config_.esr;
    wire_esr_cache(opts.esr, problem, config_);
    opts.events = deadline_events(config_, cluster);
    ResilientBicgstab engine(cluster, problem.matrix_global(), problem.matrix(),
                             problem.preconditioner(), opts);
    SolveReport rep = make_report(name(), problem.preconditioner_name(),
                                  engine.solve(problem.rhs(), x, sched));
    rep.reductions = cluster.reduction_times();
    attach_cache_stats(rep, problem, config_);
    attach_scenario(rep, config_, sched);
    return rep;
  }

 private:
  SolverConfig config_;
};

/// Algorithm-based checkpoint-recovery (core/checkpoint_recovery.hpp):
/// periodic {x, r, p} checkpoints under the config's memory/disk cost
/// model, global rollback on failure. No redundant copies, so any
/// failed-node subset with a survivor is recoverable.
class CheckpointRecoverySolver final : public Solver {
 public:
  explicit CheckpointRecoverySolver(const SolverConfig& config)
      : config_(config) {}

  [[nodiscard]] std::string name() const override {
    return "checkpoint-recovery";
  }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    const FailureSchedule sched =
        effective_schedule(config_, schedule, cluster.num_nodes());
    CheckpointRecoveryOptions opts;
    opts.pcg.rtol = config_.rtol;
    opts.pcg.max_iterations = config_.max_iterations;
    opts.interval = config_.checkpoint_interval;
    opts.costs = config_.checkpoint;
    opts.events = deadline_events(config_, cluster);
    CheckpointRecoveryPcg engine(cluster, problem.matrix_global(),
                                 problem.matrix(), problem.preconditioner(),
                                 opts);
    const ResilientPcgResult res = engine.solve(problem.rhs(), x, sched);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.reductions = cluster.reduction_times();
    if (config_.report_checkpoint) {
      const CheckpointCostModel costs = engine.resolved_costs();
      rep.checkpoint_medium = to_string(costs.medium);
      rep.checkpoint_interval = opts.interval;
      rep.checkpoint_write_per_element_s = costs.write_per_element_s;
      rep.checkpoint_read_per_element_s = costs.read_per_element_s;
      rep.checkpoint_latency_s = costs.access_latency_s;
      rep.report_checkpoint = true;
    }
    attach_scenario(rep, config_, sched);
    return rep;
  }

 private:
  SolverConfig config_;
};

/// TwinCG-style dual redundancy (core/twin_pcg.hpp): buddy nodes mirror
/// each other's live state, failures forward-recover by copying from the
/// twin — no reconstruction, no rollback. Generated scenarios are
/// constrained to buddy-pair-free episodes (forbid_pair_shift = N/2).
class TwinPcgSolver final : public Solver {
 public:
  explicit TwinPcgSolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "twin-pcg"; }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    const FailureSchedule sched = effective_schedule(
        config_, schedule, cluster.num_nodes(), cluster.num_nodes() / 2);
    TwinPcgOptions opts;
    opts.pcg.rtol = config_.rtol;
    opts.pcg.max_iterations = config_.max_iterations;
    opts.events = deadline_events(config_, cluster);
    TwinPcg engine(cluster, problem.matrix_global(), problem.matrix(),
                   problem.preconditioner(), opts);
    const ResilientPcgResult res = engine.solve(problem.rhs(), x, sched);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.redundancy_overhead_per_iteration =
        engine.redundancy_overhead_per_iteration();
    rep.reductions = cluster.reduction_times();
    attach_scenario(rep, config_, sched);
    return rep;
  }

 private:
  SolverConfig config_;
};

class StationarySolver final : public Solver {
 public:
  explicit StationarySolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "stationary"; }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    const FailureSchedule sched =
        effective_schedule(config_, schedule, cluster.num_nodes());
    StationaryOptions opts;
    opts.method = config_.stationary_method;
    opts.omega = config_.omega;
    opts.rtol = config_.rtol;
    opts.max_iterations = config_.max_iterations;
    opts.phi = config_.phi;
    opts.strategy = config_.strategy;
    opts.strategy_seed = config_.strategy_seed;
    opts.events = deadline_events(config_, cluster);
    ResilientStationary engine(cluster, problem.matrix_global(),
                               problem.matrix(), opts);
    // The stationary family ignores the Problem's preconditioner ("none");
    // `solver` stays the registry key per the SolveReport contract, and the
    // method actually swept is the config's stationary_method.
    SolveReport rep =
        make_report(name(), "none", engine.solve(problem.rhs(), x, sched));
    rep.reductions = cluster.reduction_times();
    attach_scenario(rep, config_, sched);
    return rep;
  }

 private:
  SolverConfig config_;
};

}  // namespace

SolverConfig SolverConfig::from_options(const Options& o) {
  SolverConfig c;
  c.rtol = o.get_double("rtol", c.rtol);
  c.max_iterations =
      static_cast<int>(o.get_int("max-iterations", c.max_iterations));
  c.deadline_sim_seconds =
      o.get_double("deadline", c.deadline_sim_seconds);
  c.recovery = o.get_enum<RecoveryMethod>("recovery", c.recovery);
  c.phi = static_cast<int>(o.get_int("phi", c.phi));
  c.strategy = o.get_enum<BackupStrategy>("strategy", c.strategy);
  c.strategy_seed = static_cast<std::uint64_t>(
      o.get_int("strategy-seed", static_cast<long>(c.strategy_seed)));
  c.esr.local_rtol = o.get_double("local-rtol", c.esr.local_rtol);
  c.checkpoint_interval = static_cast<int>(
      o.get_int("checkpoint-interval", c.checkpoint_interval));
  c.checkpoint.medium =
      o.get_enum<CheckpointMedium>("checkpoint-medium", c.checkpoint.medium);
  c.checkpoint.write_per_element_s =
      o.get_double("checkpoint-write-cost", c.checkpoint.write_per_element_s);
  c.checkpoint.read_per_element_s =
      o.get_double("checkpoint-read-cost", c.checkpoint.read_per_element_s);
  c.checkpoint.access_latency_s =
      o.get_double("checkpoint-latency", c.checkpoint.access_latency_s);
  c.report_checkpoint = o.get_bool("report-checkpoint", c.report_checkpoint);
  c.scenario.kind = o.get_enum<ScenarioKind>("scenario", c.scenario.kind);
  c.scenario.seed = static_cast<std::uint64_t>(
      o.get_int("scenario-seed", static_cast<long>(c.scenario.seed)));
  c.scenario.events =
      static_cast<int>(o.get_int("scenario-events", c.scenario.events));
  c.scenario.max_nodes_per_event = static_cast<int>(
      o.get_int("scenario-nodes", c.scenario.max_nodes_per_event));
  c.scenario.horizon =
      static_cast<int>(o.get_int("scenario-horizon", c.scenario.horizon));
  c.scenario.window =
      static_cast<int>(o.get_int("scenario-window", c.scenario.window));
  c.scenario.rate = o.get_double("scenario-rate", c.scenario.rate);
  c.scenario.weibull_shape =
      o.get_double("scenario-shape", c.scenario.weibull_shape);
  c.scenario.node_rate_spread =
      o.get_double("scenario-node-spread", c.scenario.node_rate_spread);
  c.report_scenario = o.get_bool("report-scenario", c.report_scenario);
  c.stationary_method =
      o.get_enum<StationaryMethod>("stationary-method", c.stationary_method);
  c.omega = o.get_double("omega", c.omega);
  c.pipeline_depth =
      static_cast<int>(o.get_int("pipeline-depth", c.pipeline_depth));
  c.exec.mode = o.get_enum<ExecMode>("exec", c.exec.mode);
  c.exec.workers = static_cast<int>(o.get_int("workers", c.exec.workers));
  c.factorization_cache =
      o.get_bool("factorization-cache", c.factorization_cache);
  c.report_cache_stats = o.get_bool("report-cache-stats", c.report_cache_stats);
  return c;
}

void register_builtin_solvers(SolverRegistry& registry) {
  registry.register_solver("pcg", [](const SolverConfig& c) {
    return std::make_unique<PcgSolver>(c);
  });
  registry.register_solver("resilient-pcg", [](const SolverConfig& c) {
    return std::make_unique<ResilientPcgSolver>(c);
  });
  registry.register_solver("pipelined-pcg", [](const SolverConfig& c) {
    return std::make_unique<PipelinedSolver>(
        c, PipelinedMethod::kConjugateGradient, /*resilient=*/false);
  });
  registry.register_solver("pipelined-resilient-pcg", [](const SolverConfig& c) {
    return std::make_unique<PipelinedSolver>(
        c, PipelinedMethod::kConjugateGradient, /*resilient=*/true);
  });
  registry.register_solver("pipelined-cr", [](const SolverConfig& c) {
    return std::make_unique<PipelinedSolver>(
        c, PipelinedMethod::kConjugateResidual, /*resilient=*/false);
  });
  registry.register_solver("pipelined-resilient-cr", [](const SolverConfig& c) {
    return std::make_unique<PipelinedSolver>(
        c, PipelinedMethod::kConjugateResidual, /*resilient=*/true);
  });
  registry.register_solver("resilient-bicgstab", [](const SolverConfig& c) {
    return std::make_unique<BicgstabSolver>(c);
  });
  registry.register_solver("checkpoint-recovery", [](const SolverConfig& c) {
    return std::make_unique<CheckpointRecoverySolver>(c);
  });
  registry.register_solver("twin-pcg", [](const SolverConfig& c) {
    return std::make_unique<TwinPcgSolver>(c);
  });
  registry.register_solver("stationary", [](const SolverConfig& c) {
    return std::make_unique<StationarySolver>(c);
  });
}

void register_builtin_preconditioners(PreconditionerRegistry& registry) {
  // Factories delegate to the legacy precond/ factory (which predates the
  // registry and remains the single place that knows the concrete types);
  // the registry adds the canonical names, aliases, and key-listing errors.
  const auto legacy = [](const char* legacy_name) {
    return [legacy_name](const CsrMatrix& a, const Partition& partition) {
      return make_preconditioner(legacy_name, a, partition);
    };
  };
  registry.register_preconditioner("none", legacy("identity"));
  registry.register_preconditioner("identity", legacy("identity"));
  registry.register_preconditioner("jacobi", legacy("jacobi"));
  registry.register_preconditioner("bjacobi", legacy("bjacobi"));
  registry.register_preconditioner("ssor", legacy("ssor"));
  registry.register_preconditioner("ic0-split", legacy("ic0"));
  registry.register_preconditioner("ic0", legacy("ic0"));
}

}  // namespace rpcg::engine
