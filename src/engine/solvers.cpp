// Built-in solver and preconditioner registrations: the adapters that put
// the four solver families behind the uniform engine::Solver interface.
//
// Each adapter translates SolverConfig into the family's native options,
// mints a fresh cluster from the Problem, runs the family's engine, and
// wraps the native result into a SolveReport. Adding a family is one more
// adapter + one register_solver() line here — nothing else in the repo
// needs to know about it.
#include <memory>

#include "core/pipelined_pcg.hpp"
#include "core/resilient_bicgstab.hpp"
#include "core/resilient_pcg.hpp"
#include "engine/registry.hpp"
#include "solver/pcg.hpp"
#include "solver/stationary.hpp"
#include "util/check.hpp"

namespace rpcg::engine {

namespace {

/// Fresh cluster with the SolverConfig's execution policy layered over the
/// Problem's default: the config can switch threading on and/or cap the
/// workers for this solve (each field overrides only when set away from its
/// default), so "--workers 4" alone caps a threaded Problem default instead
/// of silently forcing it sequential. Switching threading *off* against a
/// threaded Problem default is the Problem's own knob
/// (set_execution_policy), not the config's.
Cluster make_cluster(const Problem& problem, const SolverConfig& config) {
  Cluster cluster = problem.make_cluster();
  ExecutionPolicy policy = cluster.execution_policy();
  if (config.exec.mode != ExecMode::kSequential) policy.mode = config.exec.mode;
  if (config.exec.workers != 0) policy.workers = config.exec.workers;
  cluster.set_execution_policy(policy);
  return cluster;
}

/// Wires the Problem's factorization cache (or nullptr when the config
/// opts out) plus its memoized matrix content key into the ESR options —
/// solvers must never force esr_solve_lost_x to re-derive the key.
void wire_esr_cache(EsrOptions& esr, Problem& problem,
                    const SolverConfig& config) {
  esr.cache = config.factorization_cache ? &problem.factorization_cache()
                                         : nullptr;
  if (esr.cache != nullptr) esr.matrix_key = problem.matrix_key();
}

/// Snapshot the Problem's cache counters into the report when the config
/// opts in (solvers that can route ESR setups through the cache only).
/// A solve that bypassed the cache (factorization_cache = false) gets no
/// block at all — an all-zero snapshot would read as "cache ran with zero
/// traffic" instead of "cache was off".
void attach_cache_stats(SolveReport& rep, Problem& problem,
                        const SolverConfig& config) {
  if (!config.report_cache_stats || !config.factorization_cache) return;
  rep.cache_stats = problem.factorization_cache().stats();
  rep.report_cache_stats = true;
}

/// The reference (non-resilient) PCG, wrapping the legacy pcg_solve free
/// function unchanged — it is the bit-for-bit baseline the resilient
/// engine is tested against, so it must stay exactly that code path.
class PcgSolver final : public Solver {
 public:
  explicit PcgSolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "pcg"; }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    RPCG_CHECK(schedule.empty(),
               "the reference 'pcg' solver tolerates no failures; use "
               "'resilient-pcg'");
    Cluster cluster = make_cluster(problem, config_);
    PcgOptions opts;
    opts.rtol = config_.rtol;
    opts.max_iterations = config_.max_iterations;
    const PcgResult res = pcg_solve(cluster, problem.matrix(),
                                    problem.preconditioner(), problem.rhs(), x,
                                    opts);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.reductions = cluster.reduction_times();
    return rep;
  }

 private:
  SolverConfig config_;
};

class ResilientPcgSolver final : public Solver {
 public:
  explicit ResilientPcgSolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "resilient-pcg"; }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    ResilientPcgOptions opts;
    opts.pcg.rtol = config_.rtol;
    opts.pcg.max_iterations = config_.max_iterations;
    opts.method = config_.recovery;
    opts.phi = config_.phi;
    opts.strategy = config_.strategy;
    opts.strategy_seed = config_.strategy_seed;
    opts.esr = config_.esr;
    wire_esr_cache(opts.esr, problem, config_);
    opts.checkpoint_interval = config_.checkpoint_interval;
    opts.events = config_.events;
    ResilientPcg engine(cluster, problem.matrix_global(), problem.matrix(),
                        problem.preconditioner(), opts);
    const ResilientPcgResult res = engine.solve(problem.rhs(), x, schedule);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.redundancy_overhead_per_iteration =
        engine.redundancy_overhead_per_iteration();
    rep.reductions = cluster.reduction_times();
    attach_cache_stats(rep, problem, config_);
    return rep;
  }

 private:
  SolverConfig config_;
};

/// Communication-hiding PCG (core/pipelined_pcg.hpp). One engine serves
/// both registry keys: "pipelined-pcg" pins phi = 0 and rejects failure
/// schedules; "pipelined-resilient-pcg" wires in the ESR configuration.
/// Both opt into the reduction_time block of the report JSON — overlap
/// accounting is the point of the pipelined family.
class PipelinedSolver final : public Solver {
 public:
  PipelinedSolver(const SolverConfig& config, bool resilient)
      : config_(config), resilient_(resilient) {}

  [[nodiscard]] std::string name() const override {
    return resilient_ ? "pipelined-resilient-pcg" : "pipelined-pcg";
  }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    if (!resilient_) {
      RPCG_CHECK(schedule.empty(),
                 "'pipelined-pcg' tolerates no failures; use "
                 "'pipelined-resilient-pcg'");
    }
    Cluster cluster = make_cluster(problem, config_);
    PipelinedPcgOptions opts;
    opts.pcg.rtol = config_.rtol;
    opts.pcg.max_iterations = config_.max_iterations;
    if (resilient_) {
      opts.phi = config_.phi;
      opts.strategy = config_.strategy;
      opts.strategy_seed = config_.strategy_seed;
      opts.esr = config_.esr;
      wire_esr_cache(opts.esr, problem, config_);
    }
    opts.events = config_.events;
    PipelinedPcg engine(cluster, problem.matrix_global(), problem.matrix(),
                        problem.preconditioner(), opts);
    const ResilientPcgResult res = engine.solve(problem.rhs(), x, schedule);
    SolveReport rep = make_report(name(), problem.preconditioner_name(), res);
    rep.redundancy_overhead_per_iteration =
        engine.redundancy_overhead_per_iteration();
    rep.reductions = cluster.reduction_times();
    rep.report_reductions = true;
    attach_cache_stats(rep, problem, config_);
    return rep;
  }

 private:
  SolverConfig config_;
  bool resilient_;
};

class BicgstabSolver final : public Solver {
 public:
  explicit BicgstabSolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override {
    return "resilient-bicgstab";
  }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    BicgstabOptions opts;
    opts.rtol = config_.rtol;
    opts.max_iterations = config_.max_iterations;
    opts.phi = config_.phi;
    opts.strategy = config_.strategy;
    opts.strategy_seed = config_.strategy_seed;
    opts.esr = config_.esr;
    wire_esr_cache(opts.esr, problem, config_);
    opts.events = config_.events;
    ResilientBicgstab engine(cluster, problem.matrix_global(), problem.matrix(),
                             problem.preconditioner(), opts);
    SolveReport rep = make_report(name(), problem.preconditioner_name(),
                                  engine.solve(problem.rhs(), x, schedule));
    rep.reductions = cluster.reduction_times();
    attach_cache_stats(rep, problem, config_);
    return rep;
  }

 private:
  SolverConfig config_;
};

class StationarySolver final : public Solver {
 public:
  explicit StationarySolver(const SolverConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "stationary"; }

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x,
                                  const FailureSchedule& schedule) override {
    Cluster cluster = make_cluster(problem, config_);
    StationaryOptions opts;
    opts.method = config_.stationary_method;
    opts.omega = config_.omega;
    opts.rtol = config_.rtol;
    opts.max_iterations = config_.max_iterations;
    opts.phi = config_.phi;
    opts.strategy = config_.strategy;
    opts.strategy_seed = config_.strategy_seed;
    opts.events = config_.events;
    ResilientStationary engine(cluster, problem.matrix_global(),
                               problem.matrix(), opts);
    // The stationary family ignores the Problem's preconditioner ("none");
    // `solver` stays the registry key per the SolveReport contract, and the
    // method actually swept is the config's stationary_method.
    SolveReport rep =
        make_report(name(), "none", engine.solve(problem.rhs(), x, schedule));
    rep.reductions = cluster.reduction_times();
    return rep;
  }

 private:
  SolverConfig config_;
};

}  // namespace

SolverConfig SolverConfig::from_options(const Options& o) {
  SolverConfig c;
  c.rtol = o.get_double("rtol", c.rtol);
  c.max_iterations =
      static_cast<int>(o.get_int("max-iterations", c.max_iterations));
  c.recovery = o.get_enum<RecoveryMethod>("recovery", c.recovery);
  c.phi = static_cast<int>(o.get_int("phi", c.phi));
  c.strategy = o.get_enum<BackupStrategy>("strategy", c.strategy);
  c.strategy_seed = static_cast<std::uint64_t>(
      o.get_int("strategy-seed", static_cast<long>(c.strategy_seed)));
  c.esr.local_rtol = o.get_double("local-rtol", c.esr.local_rtol);
  c.checkpoint_interval = static_cast<int>(
      o.get_int("checkpoint-interval", c.checkpoint_interval));
  c.stationary_method =
      o.get_enum<StationaryMethod>("stationary-method", c.stationary_method);
  c.omega = o.get_double("omega", c.omega);
  c.exec.mode = o.get_enum<ExecMode>("exec", c.exec.mode);
  c.exec.workers = static_cast<int>(o.get_int("workers", c.exec.workers));
  c.factorization_cache =
      o.get_bool("factorization-cache", c.factorization_cache);
  c.report_cache_stats = o.get_bool("report-cache-stats", c.report_cache_stats);
  return c;
}

void register_builtin_solvers(SolverRegistry& registry) {
  registry.register_solver("pcg", [](const SolverConfig& c) {
    return std::make_unique<PcgSolver>(c);
  });
  registry.register_solver("resilient-pcg", [](const SolverConfig& c) {
    return std::make_unique<ResilientPcgSolver>(c);
  });
  registry.register_solver("pipelined-pcg", [](const SolverConfig& c) {
    return std::make_unique<PipelinedSolver>(c, /*resilient=*/false);
  });
  registry.register_solver("pipelined-resilient-pcg", [](const SolverConfig& c) {
    return std::make_unique<PipelinedSolver>(c, /*resilient=*/true);
  });
  registry.register_solver("resilient-bicgstab", [](const SolverConfig& c) {
    return std::make_unique<BicgstabSolver>(c);
  });
  registry.register_solver("stationary", [](const SolverConfig& c) {
    return std::make_unique<StationarySolver>(c);
  });
}

void register_builtin_preconditioners(PreconditionerRegistry& registry) {
  // Factories delegate to the legacy precond/ factory (which predates the
  // registry and remains the single place that knows the concrete types);
  // the registry adds the canonical names, aliases, and key-listing errors.
  const auto legacy = [](const char* legacy_name) {
    return [legacy_name](const CsrMatrix& a, const Partition& partition) {
      return make_preconditioner(legacy_name, a, partition);
    };
  };
  registry.register_preconditioner("none", legacy("identity"));
  registry.register_preconditioner("identity", legacy("identity"));
  registry.register_preconditioner("jacobi", legacy("jacobi"));
  registry.register_preconditioner("bjacobi", legacy("bjacobi"));
  registry.register_preconditioner("ssor", legacy("ssor"));
  registry.register_preconditioner("ic0-split", legacy("ic0"));
  registry.register_preconditioner("ic0", legacy("ic0"));
}

}  // namespace rpcg::engine
