#include "engine/registry.hpp"

#include <stdexcept>
#include <utility>

namespace rpcg::engine {

// Implemented in engine/solvers.cpp; called exactly once per registry from
// instance(). Registration through a named function keeps the built-ins
// linked into every binary that touches a registry (a static-initializer
// approach could be dead-stripped out of the static library).
void register_builtin_solvers(SolverRegistry& registry);
void register_builtin_preconditioners(PreconditionerRegistry& registry);

namespace {

template <typename Map>
[[nodiscard]] std::string key_list(const Map& factories) {
  std::string out;
  for (const auto& [name, factory] : factories) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

template <typename Map>
[[nodiscard]] std::vector<std::string> key_vector(const Map& factories) {
  std::vector<std::string> out;
  out.reserve(factories.size());
  for (const auto& [name, factory] : factories) out.push_back(name);
  return out;
}

}  // namespace

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    register_builtin_solvers(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::register_solver(const std::string& name, Factory factory) {
  if (!factory)
    throw std::invalid_argument("SolverRegistry: null factory for '" + name +
                                "'");
  factories_[name] = std::move(factory);
}

std::unique_ptr<Solver> SolverRegistry::create(
    const std::string& name, const SolverConfig& config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end())
    throw std::invalid_argument("unknown solver '" + name +
                                "'; valid: " + key_list(factories_));
  return it->second(config);
}

bool SolverRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> SolverRegistry::names() const {
  return key_vector(factories_);
}

PreconditionerRegistry& PreconditionerRegistry::instance() {
  static PreconditionerRegistry* registry = [] {
    auto* r = new PreconditionerRegistry();
    register_builtin_preconditioners(*r);
    return r;
  }();
  return *registry;
}

void PreconditionerRegistry::register_preconditioner(const std::string& name,
                                                     Factory factory) {
  if (!factory)
    throw std::invalid_argument("PreconditionerRegistry: null factory for '" +
                                name + "'");
  factories_[name] = std::move(factory);
}

std::unique_ptr<Preconditioner> PreconditionerRegistry::create(
    const std::string& name, const CsrMatrix& a,
    const Partition& partition) const {
  const auto it = factories_.find(name);
  if (it == factories_.end())
    throw std::invalid_argument("unknown preconditioner '" + name +
                                "'; valid: " + key_list(factories_));
  return it->second(a, partition);
}

bool PreconditionerRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> PreconditionerRegistry::names() const {
  return key_vector(factories_);
}

}  // namespace rpcg::engine
