// The abstract Solver interface of the engine API and its one config type.
//
// A Solver is constructed from a SolverRegistry key + SolverConfig and runs
// against any Problem bundle:
//
//   auto solver = engine::SolverRegistry::instance().create("resilient-pcg",
//                                                           config);
//   DistVector x = problem.make_x();
//   engine::SolveReport report = solver->solve(problem, x, schedule);
//
// Every solve mints a fresh cluster from the Problem (all nodes alive,
// clock at zero, the Problem's noise settings applied), so repeated solves
// of one Solver are independent experiments.
#pragma once

#include <cstdint>
#include <string>

#include "core/checkpoint.hpp"      // CheckpointMedium, CheckpointCostModel
#include "core/events.hpp"
#include "core/failure_scenario.hpp"
#include "core/failure_schedule.hpp"
#include "core/resilient_pcg.hpp"   // RecoveryMethod, EsrOptions
#include "engine/problem.hpp"
#include "engine/solve_report.hpp"
#include "solver/stationary.hpp"    // StationaryMethod
#include "util/options.hpp"
#include "util/thread_pool.hpp"     // ExecutionPolicy

namespace rpcg::engine {

/// One config for every registered solver family. Fields a family does not
/// use are ignored (e.g. `omega` outside "stationary"; `recovery` and
/// `checkpoint_interval` outside "resilient-pcg"). The string-keyed enum
/// fields round-trip via from_string/to_string, so a config is fully
/// constructible from command-line options (see from_options).
struct SolverConfig {
  double rtol = 1e-8;
  int max_iterations = 100000;

  /// Simulated-time deadline in seconds; 0 disables. Enforced cooperatively
  /// by the registry adapters: the on_iteration hook checks the cluster
  /// clock after every completed iteration and throws BudgetExceeded
  /// (core/errors.hpp) the first time total simulated time passes the
  /// deadline (the hook-less reference "pcg" checks once after the run).
  /// Deterministic — the clock is simulated, so the same job misses or
  /// makes its deadline identically on every host and worker count.
  double deadline_sim_seconds = 0.0;

  /// Recovery method of the resilient PCG engine ("none", "esr",
  /// "checkpoint-restart", "interpolation-restart").
  RecoveryMethod recovery = RecoveryMethod::kNone;
  /// Redundant copies; >= 1 enables ESR-style resilience, 0 disables it.
  int phi = 0;
  BackupStrategy strategy = BackupStrategy::kPaperAlternating;
  std::uint64_t strategy_seed = 0;
  EsrOptions esr;
  /// Checkpoint interval in iterations ("resilient-pcg" with
  /// checkpoint-restart, and the "checkpoint-recovery" family).
  int checkpoint_interval = 50;
  /// Cost model of the "checkpoint-recovery" family: where the checkpoints
  /// live (memory vs disk) and, optionally, explicit per-element/latency
  /// charges overriding the medium defaults (core/checkpoint.hpp).
  CheckpointCostModel checkpoint;
  /// Embed the resolved checkpoint cost model + interval into the report
  /// JSON ("checkpoint" block). Opt-in: legacy `rpcg-solve-report/v1`
  /// output stays byte-identical when unset.
  bool report_checkpoint = false;

  /// Generated failure scenario (core/failure_scenario.hpp). When the
  /// schedule handed to solve() is empty and `scenario.kind` is not kNone,
  /// the resilient families solve against
  /// generate_scenario(scenario, nodes); an explicit schedule always wins.
  FailureScenarioConfig scenario;
  /// Embed the scenario's kind/seed/event count into the report JSON
  /// ("scenario" block). Opt-in like `report_checkpoint`.
  bool report_scenario = false;

  /// Stationary family only.
  StationaryMethod stationary_method = StationaryMethod::kJacobi;
  double omega = 1.0;

  /// Pipelined families only: reductions in flight (1..kMaxPipelineDepth).
  /// Depth 1 is the classic Ghysels–Vanroose one-reduction pipeline; deeper
  /// rings hide each reduction behind depth-1 full iterations of work at an
  /// (1 + depth)x redundancy charge in the resilient variants.
  int pipeline_depth = 1;

  /// Host-side execution policy for the minted cluster's per-node loops
  /// ("sequential" | "threaded"; workers = 0 means hardware concurrency).
  /// Layered over the Problem's default: mode overrides when "threaded",
  /// workers overrides when nonzero (so a worker cap alone does not force a
  /// threaded Problem back to sequential). Threaded runs are bit-for-bit
  /// identical to sequential ones.
  ExecutionPolicy exec;
  /// Reuse ESR factorizations across reconstructions through the Problem's
  /// FactorizationCache. Purely a host-side wall-clock optimization —
  /// reports are byte-identical either way.
  bool factorization_cache = true;
  /// Embed a snapshot of the Problem's FactorizationCache counters
  /// (hits/misses/invalidated/entries) into the report and its JSON.
  /// Opt-in, like the pipelined family's reduction block: the legacy
  /// `rpcg-solve-report/v1` output stays byte-identical when unset. Has no
  /// effect when `factorization_cache` is false — a solve that bypassed the
  /// cache reports no block rather than a misleading all-zero one.
  bool report_cache_stats = false;

  /// Typed event hooks, forwarded to the underlying engine. The reference
  /// "pcg" solver supports no hooks (it exists as the bit-for-bit baseline).
  SolverEvents events;

  /// Reads --rtol, --max-iterations, --deadline, --recovery, --phi,
  /// --strategy, --strategy-seed, --local-rtol, --checkpoint-interval,
  /// --checkpoint-medium, --checkpoint-write-cost, --checkpoint-read-cost,
  /// --checkpoint-latency, --report-checkpoint, --scenario,
  /// --scenario-seed, --scenario-events, --scenario-nodes,
  /// --scenario-horizon, --scenario-window, --scenario-rate,
  /// --scenario-shape, --scenario-node-spread, --report-scenario,
  /// --stationary-method, --omega, --pipeline-depth, --exec, --workers,
  /// --factorization-cache, --report-cache-stats. Unknown enum names throw
  /// std::invalid_argument listing the valid keys.
  [[nodiscard]] static SolverConfig from_options(const Options& o);
};

class Solver {
 public:
  virtual ~Solver() = default;

  /// The registry key this solver was created under.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Solves A x = b for the Problem's RHS from the initial guess in x
  /// (overwritten with the solution); failures are injected per schedule.
  [[nodiscard]] virtual SolveReport solve(Problem& problem, DistVector& x,
                                          const FailureSchedule& schedule) = 0;

  [[nodiscard]] SolveReport solve(Problem& problem, DistVector& x) {
    return solve(problem, x, FailureSchedule{});
  }
};

}  // namespace rpcg::engine
