#include "engine/problem.hpp"

#include <stdexcept>
#include <utility>

#include "engine/registry.hpp"

namespace rpcg::engine {

Cluster Problem::make_cluster() const {
  Cluster cluster(partition_, comm_);
  if (noise_cv_ > 0.0) cluster.clock().set_noise(noise_cv_, noise_seed_);
  cluster.set_execution_policy(exec_);
  return cluster;
}

ProblemBuilder& ProblemBuilder::matrix(CsrMatrix&& a) {
  a_global_ = MaybeOwned<CsrMatrix>::owned(std::move(a));
  return *this;
}

ProblemBuilder& ProblemBuilder::borrow_matrix(const CsrMatrix& a) {
  a_global_ = MaybeOwned<CsrMatrix>::borrowed(a);
  return *this;
}

ProblemBuilder& ProblemBuilder::nodes(int n) {
  if (n < 1) throw std::invalid_argument("ProblemBuilder: nodes must be >= 1");
  nodes_ = n;
  return *this;
}

ProblemBuilder& ProblemBuilder::partition(Partition p) {
  partition_ = std::move(p);
  have_partition_ = true;
  return *this;
}

ProblemBuilder& ProblemBuilder::borrow_dist_matrix(const DistMatrix& a) {
  borrowed_dist_ = &a;
  return *this;
}

ProblemBuilder& ProblemBuilder::preconditioner(std::string name) {
  precond_name_ = std::move(name);
  precond_ = {};
  return *this;
}

ProblemBuilder& ProblemBuilder::preconditioner(
    std::unique_ptr<Preconditioner> m) {
  if (!m) throw std::invalid_argument("ProblemBuilder: null preconditioner");
  precond_name_ = m->name();
  precond_ = MaybeOwned<Preconditioner>::owned(std::move(m));
  return *this;
}

ProblemBuilder& ProblemBuilder::borrow_preconditioner(const Preconditioner& m) {
  precond_name_ = m.name();
  precond_ = MaybeOwned<Preconditioner>::borrowed(m);
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs(std::vector<double> b_global) {
  rhs_global_ = std::move(b_global);
  x_true_.clear();
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs_from_solution(std::vector<double> x_true) {
  x_true_ = std::move(x_true);
  rhs_global_.clear();
  return *this;
}

ProblemBuilder& ProblemBuilder::comm(CommParams params) {
  comm_ = params;
  return *this;
}

ProblemBuilder& ProblemBuilder::noise(double cv, std::uint64_t seed) {
  noise_cv_ = cv;
  noise_seed_ = seed;
  return *this;
}

Problem ProblemBuilder::build() {
  if (!a_global_)
    throw std::invalid_argument(
        "ProblemBuilder: no system matrix; call matrix() or borrow_matrix()");
  const CsrMatrix& a = *a_global_;
  const auto n = static_cast<std::size_t>(a.rows());

  Problem p;
  p.a_global_ = std::move(a_global_);

  if (borrowed_dist_ != nullptr) {
    p.partition_ = borrowed_dist_->partition();
    p.a_dist_ = MaybeOwned<DistMatrix>::borrowed(*borrowed_dist_);
  } else {
    p.partition_ =
        have_partition_ ? partition_ : Partition::block_rows(a.rows(), nodes_);
    p.a_dist_ =
        MaybeOwned<DistMatrix>::owned(DistMatrix::distribute(a, p.partition_));
  }

  if (precond_) {
    p.m_ = std::move(precond_);
  } else {
    p.m_ = MaybeOwned<Preconditioner>::owned(
        PreconditionerRegistry::instance().create(precond_name_, a,
                                                  p.partition_));
  }
  p.precond_name_ = precond_name_;

  std::vector<double> b_global;
  if (!rhs_global_.empty()) {
    if (rhs_global_.size() != n)
      throw std::invalid_argument("ProblemBuilder: rhs size " +
                                  std::to_string(rhs_global_.size()) +
                                  " != matrix rows " + std::to_string(n));
    b_global = std::move(rhs_global_);
  } else {
    std::vector<double> x_true = std::move(x_true_);
    if (x_true.empty()) {
      x_true.assign(n, 1.0);
    } else if (x_true.size() != n) {
      throw std::invalid_argument("ProblemBuilder: solution size " +
                                  std::to_string(x_true.size()) +
                                  " != matrix rows " + std::to_string(n));
    }
    b_global.resize(n);
    a.spmv(x_true, b_global);
  }
  p.b_ = DistVector(p.partition_);
  p.b_.set_global(b_global);

  p.comm_ = comm_;
  p.noise_cv_ = noise_cv_;
  p.noise_seed_ = noise_seed_;
  return p;
}

}  // namespace rpcg::engine
