#include "engine/problem.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/registry.hpp"
#include "util/rng.hpp"

namespace rpcg::engine {

namespace {

/// Seeded random solution smoothed over the matrix graph: uniform [-1, 1)
/// start, then a few Jacobi-style neighbor-averaging sweeps. Smooth enough
/// that block preconditioners behave as on the harness's sinusoidal target,
/// random enough that no component is special.
std::vector<double> random_smooth_solution(const CsrMatrix& a,
                                           std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(a.rows());
  std::vector<double> x(n);
  Rng rng(seed);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> next(n);
  for (int sweep = 0; sweep < 4; ++sweep) {
    for (Index i = 0; i < a.rows(); ++i) {
      const auto cols = a.row_cols(i);
      double sum = 0.0;
      for (const Index c : cols) sum += x[static_cast<std::size_t>(c)];
      const auto deg = static_cast<double>(cols.size());
      next[static_cast<std::size_t>(i)] =
          0.5 * x[static_cast<std::size_t>(i)] +
          0.5 * (deg > 0.0 ? sum / deg : 0.0);
    }
    x.swap(next);
  }
  return x;
}

/// Whitespace-separated doubles; '#'/'%' lines are comments.
std::vector<double> read_rhs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("ProblemBuilder: cannot open rhs file '" +
                                path + "'");
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && (line[0] == '#' || line[0] == '%')) continue;
    std::istringstream ls(line);
    double v = 0.0;
    while (ls >> v) values.push_back(v);
    if (!ls.eof())
      throw std::invalid_argument("ProblemBuilder: rhs file '" + path +
                                  "' contains a non-numeric token");
  }
  return values;
}

}  // namespace

Cluster Problem::make_cluster() const {
  Cluster cluster(partition_, comm_);
  if (noise_cv_ > 0.0) cluster.set_clock_noise(noise_cv_, noise_seed_);
  cluster.set_execution_policy(exec_);
  return cluster;
}

ProblemBuilder& ProblemBuilder::matrix(CsrMatrix&& a) {
  a_global_ = MaybeOwned<CsrMatrix>::owned(std::move(a));
  return *this;
}

ProblemBuilder& ProblemBuilder::borrow_matrix(const CsrMatrix& a) {
  a_global_ = MaybeOwned<CsrMatrix>::borrowed(a);
  return *this;
}

ProblemBuilder& ProblemBuilder::nodes(int n) {
  if (n < 1) throw std::invalid_argument("ProblemBuilder: nodes must be >= 1");
  nodes_ = n;
  return *this;
}

ProblemBuilder& ProblemBuilder::partition(Partition p) {
  partition_ = std::move(p);
  have_partition_ = true;
  return *this;
}

ProblemBuilder& ProblemBuilder::borrow_dist_matrix(const DistMatrix& a) {
  borrowed_dist_ = &a;
  return *this;
}

ProblemBuilder& ProblemBuilder::preconditioner(std::string name) {
  precond_name_ = std::move(name);
  precond_ = {};
  return *this;
}

ProblemBuilder& ProblemBuilder::preconditioner(
    std::unique_ptr<Preconditioner> m) {
  if (!m) throw std::invalid_argument("ProblemBuilder: null preconditioner");
  precond_name_ = m->name();
  precond_ = MaybeOwned<Preconditioner>::owned(std::move(m));
  return *this;
}

ProblemBuilder& ProblemBuilder::borrow_preconditioner(const Preconditioner& m) {
  precond_name_ = m.name();
  precond_ = MaybeOwned<Preconditioner>::borrowed(m);
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs(std::vector<double> b_global) {
  rhs_mode_ = RhsMode::kVector;
  rhs_global_ = std::move(b_global);
  x_true_.clear();
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs_from_solution(std::vector<double> x_true) {
  rhs_mode_ = RhsMode::kSolution;
  x_true_ = std::move(x_true);
  rhs_global_.clear();
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs_ones() {
  rhs_mode_ = RhsMode::kOnes;
  rhs_global_.clear();
  x_true_.clear();
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs_random_smooth(std::uint64_t seed) {
  rhs_mode_ = RhsMode::kRandomSmooth;
  rhs_seed_ = seed;
  rhs_global_.clear();
  x_true_.clear();
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs_from_file(std::string path) {
  rhs_mode_ = RhsMode::kFromFile;
  rhs_path_ = std::move(path);
  rhs_global_.clear();
  x_true_.clear();
  return *this;
}

ProblemBuilder& ProblemBuilder::rhs_strategy(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (name == "ones") {
    if (!arg.empty())
      throw std::invalid_argument(
          "ProblemBuilder: rhs strategy 'ones' takes no argument");
    return rhs_ones();
  }
  if (name == "random-smooth") {
    std::uint64_t seed = 0;
    if (!arg.empty()) {
      std::size_t pos = 0;
      try {
        seed = std::stoull(arg, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      // Reject trailing garbage ("7abc") and sign characters ("-1", which
      // stoull would happily wrap) — the registry-style contract is strict.
      if (pos != arg.size() || arg[0] == '-' || arg[0] == '+')
        throw std::invalid_argument(
            "ProblemBuilder: rhs strategy 'random-smooth' needs a numeric "
            "seed, got '" + arg + "'");
    }
    return rhs_random_smooth(seed);
  }
  if (name == "from-file") {
    if (arg.empty())
      throw std::invalid_argument(
          "ProblemBuilder: rhs strategy 'from-file' needs a path "
          "(from-file:PATH)");
    return rhs_from_file(arg);
  }
  throw std::invalid_argument(
      "ProblemBuilder: unknown rhs strategy '" + name +
      "'; valid strategies: from-file:PATH, ones, random-smooth[:seed]");
}

ProblemBuilder& ProblemBuilder::comm(CommParams params) {
  comm_ = params;
  return *this;
}

ProblemBuilder& ProblemBuilder::noise(double cv, std::uint64_t seed) {
  noise_cv_ = cv;
  noise_seed_ = seed;
  return *this;
}

Problem ProblemBuilder::build() {
  if (!a_global_)
    throw std::invalid_argument(
        "ProblemBuilder: no system matrix; call matrix() or borrow_matrix()");
  const CsrMatrix& a = *a_global_;
  const auto n = static_cast<std::size_t>(a.rows());

  Problem p;
  p.a_global_ = std::move(a_global_);

  if (borrowed_dist_ != nullptr) {
    p.partition_ = borrowed_dist_->partition();
    p.a_dist_ = MaybeOwned<DistMatrix>::borrowed(*borrowed_dist_);
  } else {
    p.partition_ =
        have_partition_ ? partition_ : Partition::block_rows(a.rows(), nodes_);
    p.a_dist_ =
        MaybeOwned<DistMatrix>::owned(DistMatrix::distribute(a, p.partition_));
  }

  if (precond_) {
    p.m_ = std::move(precond_);
  } else {
    p.m_ = MaybeOwned<Preconditioner>::owned(
        PreconditionerRegistry::instance().create(precond_name_, a,
                                                  p.partition_));
  }
  p.precond_name_ = precond_name_;

  std::vector<double> b_global;
  if (rhs_mode_ == RhsMode::kVector || rhs_mode_ == RhsMode::kFromFile) {
    b_global = rhs_mode_ == RhsMode::kFromFile ? read_rhs_file(rhs_path_)
                                               : std::move(rhs_global_);
    if (b_global.size() != n)
      throw std::invalid_argument(
          "ProblemBuilder: rhs size " + std::to_string(b_global.size()) +
          (rhs_mode_ == RhsMode::kFromFile ? " (from '" + rhs_path_ + "')"
                                           : "") +
          " != matrix rows " + std::to_string(n));
  } else {
    std::vector<double> x_true;
    switch (rhs_mode_) {
      case RhsMode::kOnes:
        x_true.assign(n, 1.0);
        break;
      case RhsMode::kRandomSmooth:
        x_true = random_smooth_solution(a, rhs_seed_);
        break;
      case RhsMode::kSolution:
        x_true = std::move(x_true_);
        if (x_true.size() != n)
          throw std::invalid_argument("ProblemBuilder: solution size " +
                                      std::to_string(x_true.size()) +
                                      " != matrix rows " + std::to_string(n));
        break;
      default:
        break;  // unreachable; kVector/kFromFile handled above
    }
    b_global.resize(n);
    a.spmv(x_true, b_global);
  }
  p.b_ = DistVector(p.partition_);
  p.b_.set_global(b_global);

  p.comm_ = comm_;
  p.noise_cv_ = noise_cv_;
  p.noise_seed_ = noise_seed_;
  return p;
}

}  // namespace rpcg::engine
