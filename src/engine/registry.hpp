// String-keyed registries of the engine API.
//
// The SolverRegistry maps a name to a factory producing an engine::Solver
// from a SolverConfig; the PreconditionerRegistry maps a name to a factory
// producing a Preconditioner from the global matrix + partition. Both
// reject unknown keys with an std::invalid_argument that lists every
// registered name — the same UX as the enum from_string parsers.
//
// The built-in families register themselves on first use of instance()
// (deterministic, immune to static-library dead stripping):
//
//   solvers:          "pcg", "resilient-pcg", "pipelined-pcg",
//                     "pipelined-resilient-pcg", "pipelined-cr",
//                     "pipelined-resilient-cr", "resilient-bicgstab",
//                     "checkpoint-recovery", "twin-pcg", "stationary"
//   preconditioners:  "none", "jacobi", "bjacobi", "ssor", "ic0-split"
//                     (aliases: "identity" -> none, "ic0" -> ic0-split)
//
// Adding a new solver variant is one register_solver() call — no harness,
// bench, or CLI change needed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/solver.hpp"
#include "precond/preconditioner.hpp"

namespace rpcg::engine {

class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>(const SolverConfig&)>;

  /// The process-wide registry, with the built-ins pre-registered.
  [[nodiscard]] static SolverRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void register_solver(const std::string& name, Factory factory);

  /// Constructs the solver registered under `name`; unknown names throw
  /// std::invalid_argument listing the valid keys.
  [[nodiscard]] std::unique_ptr<Solver> create(
      const std::string& name, const SolverConfig& config = {}) const;

  [[nodiscard]] bool contains(const std::string& name) const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

class PreconditionerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Preconditioner>(
      const CsrMatrix&, const Partition&)>;

  [[nodiscard]] static PreconditionerRegistry& instance();

  void register_preconditioner(const std::string& name, Factory factory);

  [[nodiscard]] std::unique_ptr<Preconditioner> create(
      const std::string& name, const CsrMatrix& a,
      const Partition& partition) const;

  [[nodiscard]] bool contains(const std::string& name) const;
  /// All registered names (aliases included), sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace rpcg::engine
