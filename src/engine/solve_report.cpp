#include "engine/solve_report.hpp"

#include "util/json.hpp"
#include "util/json_writer.hpp"

namespace rpcg::engine {

namespace {

// Shortest round-trip rendering (see util/json_writer.hpp), named tersely
// because every field below goes through it.
std::string fmt(double v) { return json_double(v); }
std::string fmt(bool v) { return json_bool(v); }

constexpr const char* kPhaseNames[kNumPhases] = {"iteration", "redundancy",
                                                 "checkpoint", "recovery"};

}  // namespace

std::string SolveReport::to_json(int indent) const {
  JsonWriter w(indent);
  w.open();
  w.field("schema", json_quote("rpcg-solve-report/v1"));
  w.field("solver", json_quote(solver));
  w.field("preconditioner", json_quote(preconditioner));
  w.field("converged", fmt(converged));
  w.field("iterations", std::to_string(iterations));
  w.field("rel_residual", fmt(rel_residual));
  w.field("solver_residual_norm", fmt(solver_residual_norm));
  w.field("true_residual_norm", fmt(true_residual_norm));
  w.field("delta_metric", fmt(delta_metric));
  w.field("sim_time", fmt(sim_time));
  w.open_field("sim_time_phase", "{");
  for (int ph = 0; ph < kNumPhases; ++ph)
    w.field(kPhaseNames[ph], fmt(sim_time_phase[static_cast<std::size_t>(ph)]),
            ph + 1 < kNumPhases);
  w.close("}", true);
  w.field("wall_seconds", fmt(wall_seconds));
  w.field("redundancy_overhead_per_iteration",
          fmt(redundancy_overhead_per_iteration));
  if (report_reductions) {
    w.open_field("reduction_time", "{");
    w.field("posted", fmt(reductions.posted_s));
    w.field("hidden", fmt(reductions.hidden_s));
    w.field("exposed", fmt(reductions.exposed_s));
    w.field("count", std::to_string(reductions.count));
    w.field("depth", std::to_string(reduction_depth));
    w.field("max_in_flight", std::to_string(reductions.max_in_flight), false);
    w.close("}", true);
  }
  if (report_cache_stats) {
    w.open_field("factorization_cache", "{");
    w.field("hits", std::to_string(cache_stats.hits));
    w.field("misses", std::to_string(cache_stats.misses));
    w.field("invalidated", std::to_string(cache_stats.invalidated));
    w.field("entries", std::to_string(cache_stats.entries), false);
    w.close("}", true);
  }
  if (report_checkpoint) {
    w.open_field("checkpoint", "{");
    w.field("medium", json_quote(checkpoint_medium));
    w.field("interval", std::to_string(checkpoint_interval));
    w.field("write_per_element", fmt(checkpoint_write_per_element_s));
    w.field("read_per_element", fmt(checkpoint_read_per_element_s));
    w.field("access_latency", fmt(checkpoint_latency_s), false);
    w.close("}", true);
  }
  if (report_scenario) {
    w.open_field("scenario", "{");
    w.field("kind", json_quote(scenario_kind));
    w.field("seed", std::to_string(scenario_seed));
    w.field("events", std::to_string(scenario_events), false);
    w.close("}", true);
  }
  w.field("checkpoints_written", std::to_string(checkpoints_written));
  w.field("rolled_back_iterations", std::to_string(rolled_back_iterations));
  w.open_field("recoveries", "[");
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryRecord& rec = recoveries[i];
    std::string nodes;
    for (const NodeId f : rec.nodes) {
      if (!nodes.empty()) nodes += ", ";
      nodes += std::to_string(f);
    }
    std::string entry = "{\"iteration\": ";
    entry += std::to_string(rec.iteration);
    entry += ", \"nodes\": [";
    entry += nodes;
    entry += "], \"psi\": ";
    entry += std::to_string(rec.stats.psi);
    entry += ", \"lost_rows\": ";
    entry += std::to_string(rec.stats.lost_rows);
    entry += ", \"gathered_elements\": ";
    entry += std::to_string(rec.stats.gathered_elements);
    entry += ", \"local_solve_iterations\": ";
    entry += std::to_string(rec.stats.local_solve_iterations);
    entry += ", \"local_solve_rel_residual\": ";
    entry += fmt(rec.stats.local_solve_rel_residual);
    entry += ", \"sim_seconds\": ";
    entry += fmt(rec.stats.sim_seconds);
    entry += '}';
    w.raw(std::move(entry), i + 1 < recoveries.size());
  }
  w.close("]", false);
  w.close("}", false);
  return std::move(w).str();
}

namespace {

SolveReport common(std::string solver, std::string precond) {
  SolveReport rep;
  rep.solver = std::move(solver);
  rep.preconditioner = std::move(precond);
  return rep;
}

}  // namespace

SolveReport make_report(std::string solver, std::string precond,
                        const ResilientPcgResult& r) {
  SolveReport rep = common(std::move(solver), std::move(precond));
  rep.converged = r.converged;
  rep.iterations = r.iterations;
  rep.rel_residual = r.rel_residual;
  rep.solver_residual_norm = r.solver_residual_norm;
  rep.true_residual_norm = r.true_residual_norm;
  rep.delta_metric = r.delta_metric;
  rep.sim_time = r.sim_time;
  rep.sim_time_phase = r.sim_time_phase;
  rep.wall_seconds = r.wall_seconds;
  rep.recoveries = r.recoveries;
  rep.checkpoints_written = r.checkpoints_written;
  rep.rolled_back_iterations = r.rolled_back_iterations;
  return rep;
}

SolveReport make_report(std::string solver, std::string precond,
                        const PcgResult& r) {
  SolveReport rep = common(std::move(solver), std::move(precond));
  rep.converged = r.converged;
  rep.iterations = r.iterations;
  rep.rel_residual = r.rel_residual;
  rep.solver_residual_norm = r.solver_residual_norm;
  rep.true_residual_norm = r.true_residual_norm;
  rep.delta_metric = r.delta_metric;
  rep.sim_time = r.sim_time;
  rep.sim_time_phase = r.sim_time_phase;
  return rep;
}

SolveReport make_report(std::string solver, std::string precond,
                        const BicgstabResult& r) {
  SolveReport rep = common(std::move(solver), std::move(precond));
  rep.converged = r.converged;
  rep.iterations = r.iterations;
  rep.rel_residual = r.rel_residual;
  rep.true_residual_norm = r.true_residual_norm;
  rep.sim_time = r.sim_time;
  rep.sim_time_phase = r.sim_time_phase;
  rep.recoveries = r.recoveries;
  return rep;
}

SolveReport make_report(std::string solver, std::string precond,
                        const StationaryResult& r) {
  SolveReport rep = common(std::move(solver), std::move(precond));
  rep.converged = r.converged;
  rep.iterations = r.iterations;
  rep.rel_residual = r.rel_residual;
  rep.sim_time = r.sim_time;
  rep.sim_time_phase = r.sim_time_phase;
  rep.recoveries = r.recoveries;
  return rep;
}

}  // namespace rpcg::engine
