// The one structured result type of the engine API.
//
// SolveReport subsumes the per-family result structs (PcgResult,
// ResilientPcgResult, BicgstabResult, StationaryResult): every field that
// any solver family reports has one canonical slot here, and fields a
// family cannot produce stay at their zero defaults. It serializes to the
// JSON dialect of the existing `rpcg-bench-report/v1` perf reports
// (schema key `rpcg-solve-report/v1`), so per-solve records can be embedded
// into — or diffed against — the bench trajectory snapshots.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/events.hpp"  // RecoveryRecord
#include "core/factorization_cache.hpp"
#include "core/resilient_pcg.hpp"
#include "core/resilient_bicgstab.hpp"
#include "sim/cluster.hpp"  // Phase, kNumPhases
#include "solver/pcg.hpp"
#include "solver/stationary.hpp"

namespace rpcg::engine {

struct SolveReport {
  /// Registry key of the solver that produced this report ("pcg",
  /// "resilient-pcg", ...) and the preconditioner name it ran with.
  std::string solver;
  std::string preconditioner;

  // Convergence.
  bool converged = false;
  int iterations = 0;
  double rel_residual = 0.0;
  double solver_residual_norm = 0.0;
  double true_residual_norm = 0.0;
  double delta_metric = 0.0;  ///< Eqn. 7 residual deviation

  // Simulated time, total and per accounting phase.
  double sim_time = 0.0;
  std::array<double, kNumPhases> sim_time_phase{};
  double wall_seconds = 0.0;

  // Resilience accounting.
  std::vector<RecoveryRecord> recoveries;
  int checkpoints_written = 0;
  int rolled_back_iterations = 0;  ///< work redone by the C/R baseline
  /// Failure-free per-iteration cost of the redundant copies (Sec. 4.2).
  double redundancy_overhead_per_iteration = 0.0;

  /// Split-phase reduction accounting of the solve's cluster (posted =
  /// hidden + exposed; see sim/collectives.hpp). Populated in memory for
  /// every registry solver; serialized only when `report_reductions` is set
  /// (the pipelined solvers), so the `rpcg-solve-report/v1` JSON of the
  /// pre-existing solvers stays byte-identical.
  ReductionTimes reductions;
  bool report_reductions = false;
  /// Pipeline depth of the solve (1 = classic Ghysels–Vanroose pipelining);
  /// serialized inside the reduction_time block next to its companion
  /// `reductions.max_in_flight` observation.
  int reduction_depth = 1;

  /// Snapshot of the Problem's FactorizationCache at the end of the solve
  /// (the cache is problem-lifetime, so counters accumulate across solves of
  /// one Problem). Serialized only when `report_cache_stats` is set
  /// (SolverConfig::report_cache_stats, opt-in like the reductions block),
  /// so legacy `rpcg-solve-report/v1` output stays byte-identical.
  FactorizationCache::Stats cache_stats;
  bool report_cache_stats = false;

  /// Resolved checkpoint cost model of the "checkpoint-recovery" family
  /// (medium name, interval, actual per-element/latency charges).
  /// Serialized only when `report_checkpoint` is set
  /// (SolverConfig::report_checkpoint) — opt-in like the blocks above.
  std::string checkpoint_medium;
  int checkpoint_interval = 0;
  double checkpoint_write_per_element_s = 0.0;
  double checkpoint_read_per_element_s = 0.0;
  double checkpoint_latency_s = 0.0;
  bool report_checkpoint = false;

  /// Generated failure scenario the solve ran against (kind, seed, number
  /// of generated events). Serialized only when `report_scenario` is set
  /// (SolverConfig::report_scenario).
  std::string scenario_kind;
  std::uint64_t scenario_seed = 0;
  int scenario_events = 0;
  bool report_scenario = false;

  [[nodiscard]] double recovery_sim_time() const {
    return sim_time_phase[static_cast<std::size_t>(Phase::kRecovery)];
  }
  [[nodiscard]] double redundancy_sim_time() const {
    return sim_time_phase[static_cast<std::size_t>(Phase::kRedundancy)];
  }

  /// Deterministic JSON (stable key order, shortest-round-trip doubles),
  /// schema `rpcg-solve-report/v1`. `indent` shifts every line right by that
  /// many spaces so reports can be embedded in a surrounding document.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Wrappers from the per-family result structs; `solver`/`precond` name
/// what produced the result (registry keys when run through the engine).
[[nodiscard]] SolveReport make_report(std::string solver, std::string precond,
                                      const ResilientPcgResult& r);
[[nodiscard]] SolveReport make_report(std::string solver, std::string precond,
                                      const PcgResult& r);
[[nodiscard]] SolveReport make_report(std::string solver, std::string precond,
                                      const BicgstabResult& r);
[[nodiscard]] SolveReport make_report(std::string solver, std::string precond,
                                      const StationaryResult& r);

}  // namespace rpcg::engine
