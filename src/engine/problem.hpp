// The engine's `Problem` bundle: everything a solver needs, with explicit
// ownership.
//
// Before the engine existed, every bench/example/harness juggled the same
// four-to-five objects by hand — global CsrMatrix, Partition, DistMatrix,
// Preconditioner, RHS DistVector — with implicit "must outlive the solver"
// contracts between them. A Problem carries all of them in one bundle whose
// ownership is explicit per component (each is either owned by the Problem
// or borrowed from a longer-lived holder via MaybeOwned), and knows how to
// mint fresh simulated clusters and zero initial guesses for repeated
// solves.
//
// Build one with ProblemBuilder:
//
//   auto problem = engine::ProblemBuilder()
//                      .matrix(poisson2d_5pt(96, 96))   // owned by the bundle
//                      .nodes(16)
//                      .preconditioner("bjacobi")        // by registry name
//                      .build();                         // b defaults to A*1
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/factorization_cache.hpp"
#include "precond/preconditioner.hpp"
#include "sim/cluster.hpp"
#include "sim/dist_matrix.hpp"
#include "sim/dist_vector.hpp"
#include "sparse/csr.hpp"
#include "util/maybe_owned.hpp"
#include "util/thread_pool.hpp"

namespace rpcg::engine {

class ProblemBuilder;

class Problem {
 public:
  [[nodiscard]] const CsrMatrix& matrix_global() const { return *a_global_; }
  [[nodiscard]] const DistMatrix& matrix() const { return *a_dist_; }
  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] const Preconditioner& preconditioner() const { return *m_; }
  [[nodiscard]] const std::string& preconditioner_name() const {
    return precond_name_;
  }
  [[nodiscard]] const DistVector& rhs() const { return b_; }
  [[nodiscard]] const CommParams& comm_params() const { return comm_; }

  /// Timing jitter applied to clusters minted after this call (cv = 0
  /// disables noise). Benches vary the seed per repetition.
  void set_noise(double cv, std::uint64_t seed) {
    noise_cv_ = cv;
    noise_seed_ = seed;
  }
  [[nodiscard]] double noise_cv() const { return noise_cv_; }
  [[nodiscard]] std::uint64_t noise_seed() const { return noise_seed_; }

  /// Execution policy stamped onto clusters minted after this call
  /// (sequential by default; SolverConfig::exec overrides per solve).
  void set_execution_policy(const ExecutionPolicy& policy) { exec_ = policy; }
  [[nodiscard]] const ExecutionPolicy& execution_policy() const {
    return exec_;
  }

  /// The problem-lifetime factorization cache: ESR reconstruction setups
  /// (submatrix + IC(0)/LDLᵀ) reused across solves and harness reps. The
  /// engine's solvers wire it into EsrOptions unless the SolverConfig
  /// disables caching.
  [[nodiscard]] FactorizationCache& factorization_cache() const {
    return *cache_;
  }

  /// Content key of matrix_global(), memoized on first use: deriving it
  /// hashes every stored entry, so solvers must not re-derive it per solve
  /// (let alone per recovery). First call is not thread-safe — it happens
  /// during solver setup, before any job/worker fan-out touches the bundle.
  [[nodiscard]] const FactorizationCache::MatrixKey& matrix_key() const {
    if (!matrix_key_)
      matrix_key_ = FactorizationCache::matrix_key(*a_global_);
    return *matrix_key_;
  }

  /// Fresh simulated cluster: all nodes alive, clock at zero, current noise
  /// settings applied. Every solve of a registry solver starts from one.
  [[nodiscard]] Cluster make_cluster() const;

  /// Zero initial guess over the problem's partition.
  [[nodiscard]] DistVector make_x() const { return DistVector(partition_); }

  Problem(Problem&&) noexcept = default;
  Problem& operator=(Problem&&) noexcept = default;

 private:
  friend class ProblemBuilder;
  Problem() = default;

  MaybeOwned<CsrMatrix> a_global_;
  Partition partition_;
  MaybeOwned<DistMatrix> a_dist_;
  MaybeOwned<Preconditioner> m_;
  std::string precond_name_;
  DistVector b_;
  CommParams comm_{};
  double noise_cv_ = 0.0;
  std::uint64_t noise_seed_ = 0;
  ExecutionPolicy exec_;
  // unique_ptr so the bundle stays movable (the cache holds a mutex).
  std::unique_ptr<FactorizationCache> cache_ =
      std::make_unique<FactorizationCache>();
  mutable std::optional<FactorizationCache::MatrixKey> matrix_key_;
};

/// Fluent builder. Exactly one matrix source is required; everything else
/// has defaults (16 nodes, block-row partition, "bjacobi" preconditioner,
/// b = A * ones, noise off). Borrowing setters require the borrowed object
/// to outlive the built Problem; owning setters move the object in.
class ProblemBuilder {
 public:
  /// Takes ownership of the global system matrix.
  ProblemBuilder& matrix(CsrMatrix&& a);
  /// Borrows the global system matrix (e.g. a ReproMatrix member kept by
  /// the caller, or one matrix shared by many Problems).
  ProblemBuilder& borrow_matrix(const CsrMatrix& a);

  /// Number of simulated nodes for the default block-row partition
  /// (ignored when partition() or borrow_dist_matrix() is used).
  ProblemBuilder& nodes(int n);
  ProblemBuilder& partition(Partition p);

  /// Borrows an already-distributed matrix, reusing its scatter plan across
  /// Problems (the partition is taken from it).
  ProblemBuilder& borrow_dist_matrix(const DistMatrix& a);

  /// Preconditioner by PreconditionerRegistry key ("jacobi", "bjacobi",
  /// "ssor", "ic0-split", "none"); constructed at build() time.
  ProblemBuilder& preconditioner(std::string name);
  ProblemBuilder& preconditioner(std::unique_ptr<Preconditioner> m);
  ProblemBuilder& borrow_preconditioner(const Preconditioner& m);

  /// Right-hand side as a global vector.
  ProblemBuilder& rhs(std::vector<double> b_global);
  /// b = A * x_true for a known solution x_true (the harness convention).
  ProblemBuilder& rhs_from_solution(std::vector<double> x_true);

  // Named right-hand-side strategies. The last rhs-setter wins, like every
  // other builder knob.

  /// b = A * ones — today's default, made explicit.
  ProblemBuilder& rhs_ones();
  /// b = A * x_true for a seeded random solution smoothed over the matrix
  /// graph (a few neighbor-averaging sweeps), so the solve target is
  /// non-trivial but not adversarially rough.
  ProblemBuilder& rhs_random_smooth(std::uint64_t seed);
  /// b read from a text file of whitespace-separated doubles ('#'/'%'
  /// comment lines allowed); must hold exactly one value per matrix row.
  /// Read at build() time; a missing/short/oversized file throws
  /// std::invalid_argument.
  ProblemBuilder& rhs_from_file(std::string path);
  /// Strategy by name, registry-style: "ones", "random-smooth[:seed]",
  /// "from-file:PATH". Unknown names throw std::invalid_argument listing
  /// the valid strategies — the same UX as the solver/preconditioner
  /// registries, so CLI layers can forward a --rhs flag verbatim.
  ProblemBuilder& rhs_strategy(const std::string& spec);

  ProblemBuilder& comm(CommParams params);
  ProblemBuilder& noise(double cv, std::uint64_t seed);

  /// Validates and assembles the bundle. Throws std::invalid_argument on a
  /// missing matrix, a size-mismatched RHS/solution, or an unknown
  /// preconditioner name (listing the registry's valid keys).
  [[nodiscard]] Problem build();

 private:
  enum class RhsMode { kOnes, kVector, kSolution, kRandomSmooth, kFromFile };

  MaybeOwned<CsrMatrix> a_global_;
  int nodes_ = 16;
  Partition partition_;
  bool have_partition_ = false;
  const DistMatrix* borrowed_dist_ = nullptr;
  std::string precond_name_ = "bjacobi";
  MaybeOwned<Preconditioner> precond_;
  RhsMode rhs_mode_ = RhsMode::kOnes;
  std::vector<double> rhs_global_;
  std::vector<double> x_true_;
  std::uint64_t rhs_seed_ = 0;
  std::string rhs_path_;
  CommParams comm_{};
  double noise_cv_ = 0.0;
  std::uint64_t noise_seed_ = 0;
};

}  // namespace rpcg::engine
