// Multiple node failures — the scenario this library exists for.
//
// Demonstrates, on one problem:
//   (a) three *simultaneous* failures (a dead switch takes out a rack),
//   (b) an *overlapping* failure: another node dies while reconstruction of
//       the first failures is still running (the reconstruction restarts
//       with the merged failed set, Sec. 4.1 of the paper),
//   (c) repeated failures across the run, including a replacement node that
//       fails again later,
//   (d) what happens when failures exceed the configured redundancy phi.
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace rpcg;

struct Problem {
  CsrMatrix a = elasticity3d(8, 8, 8, Stencil3d::kFacesCorners14, 0.0, 1);
  Partition part = Partition::block_rows(a.rows(), 16);
  DistVector b{part};

  Problem() {
    std::vector<double> ones(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> bg(static_cast<std::size_t>(a.rows()));
    a.spmv(ones, bg);
    b.set_global(bg);
  }
};

void run_scenario(const char* name, Problem& p, int phi,
                  const FailureSchedule& schedule) {
  const auto precond = make_preconditioner("bjacobi", p.a, p.part);
  Cluster cluster(p.part, CommParams{});
  ResilientPcgOptions opts;
  opts.pcg.rtol = 1e-8;
  opts.method = RecoveryMethod::kEsr;
  opts.phi = phi;
  ResilientPcg solver(cluster, p.a, *precond, opts);
  DistVector x(p.part);
  std::printf("--- %s (phi = %d) ---\n", name, phi);
  try {
    const auto res = solver.solve(p.b, x, schedule);
    std::printf("converged in %d iterations, %zu recoveries, recovery time "
                "%.6f s of %.6f s total\n",
                res.iterations, res.recoveries.size(),
                res.sim_time_phase[static_cast<int>(Phase::kRecovery)],
                res.sim_time);
    for (const auto& rec : res.recoveries) {
      std::printf("  iteration %3d: recovered %zu node(s):", rec.iteration,
                  rec.nodes.size());
      for (const NodeId f : rec.nodes) std::printf(" %d", f);
      std::printf("\n");
    }
  } catch (const UnrecoverableFailure& e) {
    std::printf("UNRECOVERABLE: %s\n", e.what());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Problem p;

  // (a) Three simultaneous failures (contiguous ranks, like a dead switch).
  run_scenario("three simultaneous failures", p, 3,
               FailureSchedule::contiguous(12, 4, 3));

  // (b) Overlapping failure: node 9 dies during the reconstruction of 4-5.
  {
    FailureSchedule s;
    s.add({12, {4, 5}, false});
    s.add({12, {9}, true});  // strikes mid-reconstruction
    run_scenario("overlapping failure during reconstruction", p, 3, s);
  }

  // (c) Failures spread over the run; node 4's replacement dies again.
  {
    FailureSchedule s;
    s.add({5, {4}, false});
    s.add({18, {11, 12}, false});
    s.add({30, {4}, false});
    run_scenario("repeated failures, replacement fails again", p, 2, s);
  }

  // (d) More simultaneous failures than redundant copies: with phi = 1 a
  // double failure can destroy both the owner and its designated backup.
  // (Whether data survives then depends only on the free SpMV copies; on
  // this matrix rank 0's boundary elements do survive, so we use a diagonal
  // matrix where no free copies exist at all.)
  {
    CsrMatrix diag = CsrMatrix::identity(1600);
    Partition part = Partition::block_rows(1600, 16);
    DistVector b(part);
    std::vector<double> ones(1600, 1.0);
    b.set_global(ones);
    const auto precond = make_identity_preconditioner();
    Cluster cluster(part, CommParams{});
    ResilientPcgOptions opts;
    opts.method = RecoveryMethod::kEsr;
    opts.phi = 1;
    ResilientPcg solver(cluster, diag, *precond, opts);
    DistVector x(part);
    std::printf("--- psi = 2 failures with phi = 1 on a diagonal matrix ---\n");
    try {
      (void)solver.solve(b, x, FailureSchedule::contiguous(0, 7, 2));
      std::printf("unexpectedly recovered\n");
    } catch (const UnrecoverableFailure& e) {
      std::printf("UNRECOVERABLE (as expected): %s\n", e.what());
    }
  }
  return 0;
}
