// Multiple node failures — the scenario this library exists for.
//
// Demonstrates, on one problem:
//   (a) three *simultaneous* failures (a dead switch takes out a rack),
//   (b) an *overlapping* failure: another node dies while reconstruction of
//       the first failures is still running (the reconstruction restarts
//       with the merged failed set, Sec. 4.1 of the paper),
//   (c) repeated failures across the run, including a replacement node that
//       fails again later,
//   (d) what happens when failures exceed the configured redundancy phi.
//
// Uses the engine API throughout: one Problem bundle, "resilient-pcg" from
// the registry with per-scenario phi, and the typed event hooks to narrate
// failures and recoveries as they happen.
#include <cstdio>

#include "engine/registry.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace rpcg;

void run_scenario(const char* name, engine::Problem& problem, int phi,
                  const FailureSchedule& schedule) {
  engine::SolverConfig config;
  config.recovery = RecoveryMethod::kEsr;
  config.phi = phi;
  config.events.on_failure_injected = [](const FailureEvent& ev) {
    std::printf("  [event] iteration %3d: %zu node(s) failed%s\n",
                ev.iteration, ev.nodes.size(),
                ev.during_recovery ? " (during recovery)" : "");
  };
  const auto solver =
      engine::SolverRegistry::instance().create("resilient-pcg", config);
  DistVector x = problem.make_x();
  std::printf("--- %s (phi = %d) ---\n", name, phi);
  try {
    const auto res = solver->solve(problem, x, schedule);
    std::printf("converged in %d iterations, %zu recoveries, recovery time "
                "%.6f s of %.6f s total\n",
                res.iterations, res.recoveries.size(), res.recovery_sim_time(),
                res.sim_time);
    for (const auto& rec : res.recoveries) {
      std::printf("  iteration %3d: recovered %zu node(s):", rec.iteration,
                  rec.nodes.size());
      for (const NodeId f : rec.nodes) std::printf(" %d", f);
      std::printf("\n");
    }
  } catch (const UnrecoverableFailure& e) {
    std::printf("UNRECOVERABLE: %s\n", e.what());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  engine::Problem problem =
      engine::ProblemBuilder()
          .matrix(elasticity3d(8, 8, 8, Stencil3d::kFacesCorners14, 0.0, 1))
          .nodes(16)
          .preconditioner("bjacobi")
          .build();

  // (a) Three simultaneous failures (contiguous ranks, like a dead switch).
  run_scenario("three simultaneous failures", problem, 3,
               FailureSchedule::contiguous(12, 4, 3));

  // (b) Overlapping failure: node 9 dies during the reconstruction of 4-5.
  {
    FailureSchedule s;
    s.add({12, {4, 5}, false});
    s.add({12, {9}, true});  // strikes mid-reconstruction
    run_scenario("overlapping failure during reconstruction", problem, 3, s);
  }

  // (c) Failures spread over the run; node 4's replacement dies again.
  {
    FailureSchedule s;
    s.add({5, {4}, false});
    s.add({18, {11, 12}, false});
    s.add({30, {4}, false});
    run_scenario("repeated failures, replacement fails again", problem, 2, s);
  }

  // (d) More simultaneous failures than redundant copies: with phi = 1 a
  // double failure can destroy both the owner and its designated backup.
  // (Whether data survives then depends only on the free SpMV copies; on
  // this matrix rank 0's boundary elements do survive, so we use a diagonal
  // matrix where no free copies exist at all.)
  {
    engine::Problem diag = engine::ProblemBuilder()
                               .matrix(CsrMatrix::identity(1600))
                               .nodes(16)
                               .preconditioner("none")
                               .rhs(std::vector<double>(1600, 1.0))
                               .build();
    engine::SolverConfig config;
    config.recovery = RecoveryMethod::kEsr;
    config.phi = 1;
    const auto solver =
        engine::SolverRegistry::instance().create("resilient-pcg", config);
    DistVector x = diag.make_x();
    std::printf("--- psi = 2 failures with phi = 1 on a diagonal matrix ---\n");
    try {
      (void)solver->solve(diag, x, FailureSchedule::contiguous(0, 7, 2));
      std::printf("unexpectedly recovered\n");
    } catch (const UnrecoverableFailure& e) {
      std::printf("UNRECOVERABLE (as expected): %s\n", e.what());
    }
  }
  return 0;
}
