// Solve a user-supplied SPD MatrixMarket system with the resilient solver.
//
//   ./matrix_market_solve --file my_matrix.mtx [--nodes 32] [--phi 2]
//                         [--precond bjacobi] [--fail-at 0.5] [--psi 2]
//                         [--rtol 1e-8] [--rcm]
//
// Without --file, a demonstration matrix is written to a temporary location
// first so the example is runnable out of the box. With --rcm the matrix is
// RCM-reordered before distribution (often much cheaper redundancy, Sec. 5).
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/reorder.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  const Options opts_cli(argc, argv);

  std::string path = opts_cli.get_string("file", "");
  if (path.empty()) {
    path = "/tmp/rpcg_demo.mtx";
    write_matrix_market_file(path, fem2d_p1(64, 64));
    std::printf("no --file given; wrote a demo FEM matrix to %s\n", path.c_str());
  }

  CsrMatrix a = read_matrix_market_file(path);
  if (!a.is_symmetric(1e-10)) {
    std::fprintf(stderr, "matrix must be symmetric (SPD) for PCG\n");
    return 1;
  }
  if (opts_cli.get_bool("rcm", false)) {
    const Index before = a.bandwidth();
    a = a.permuted_symmetric(rcm_ordering(a));
    std::printf("RCM reordering: bandwidth %lld -> %lld\n",
                static_cast<long long>(before),
                static_cast<long long>(a.bandwidth()));
  }

  const int nodes = static_cast<int>(opts_cli.get_int("nodes", 32));
  const int phi = static_cast<int>(opts_cli.get_int("phi", 2));
  const int psi = static_cast<int>(opts_cli.get_int("psi", std::min(phi, 2)));
  const Partition part = Partition::block_rows(a.rows(), nodes);
  Cluster cluster(part, CommParams{});

  DistVector b(part);
  {
    std::vector<double> ones(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> bg(static_cast<std::size_t>(a.rows()));
    a.spmv(ones, bg);
    b.set_global(bg);
  }

  const auto precond = make_preconditioner(
      opts_cli.get_string("precond", "bjacobi"), a, part);
  ResilientPcgOptions opts;
  opts.pcg.rtol = opts_cli.get_double("rtol", 1e-8);
  opts.method = phi > 0 ? RecoveryMethod::kEsr : RecoveryMethod::kNone;
  opts.phi = phi;

  ResilientPcg solver(cluster, a, *precond, opts);

  // Place psi failures at the requested progress of a quick reference run.
  FailureSchedule schedule;
  const double fail_at = opts_cli.get_double("fail-at", 0.5);
  if (phi > 0 && psi > 0) {
    Cluster ref_cluster(part, CommParams{});
    ResilientPcgOptions ref_opts = opts;
    ref_opts.method = RecoveryMethod::kNone;
    ref_opts.phi = 0;
    ResilientPcg ref(ref_cluster, a, *precond, ref_opts);
    DistVector x0(part);
    const auto ref_res = ref.solve(b, x0, {});
    const int at = std::max(1, static_cast<int>(fail_at * ref_res.iterations));
    schedule = FailureSchedule::contiguous(at, nodes / 2, psi);
    std::printf("scheduling %d failure(s) at iteration %d (ranks %d..%d)\n",
                psi, at, nodes / 2, nodes / 2 + psi - 1);
  }

  DistVector x(part);
  const auto res = solver.solve(b, x, schedule);
  std::printf("n=%lld nnz=%lld nodes=%d phi=%d | converged=%s iters=%d "
              "rel.res=%.2e sim time=%.5f s (recovery %.5f s)\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.nnz()), nodes, phi,
              res.converged ? "yes" : "no", res.iterations, res.rel_residual,
              res.sim_time,
              res.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
  return res.converged ? 0 : 1;
}
