// Solve a user-supplied SPD MatrixMarket system with a registry-selected
// resilient solver.
//
//   ./matrix_market_solve --file my_matrix.mtx [--nodes 32] [--phi 2]
//                         [--solver resilient-pcg] [--precond bjacobi]
//                         [--fail-at 0.5] [--psi 2] [--rtol 1e-8] [--rcm]
//
// Without --file, a demonstration matrix is written to a temporary location
// first so the example is runnable out of the box. With --rcm the matrix is
// RCM-reordered before distribution (often much cheaper redundancy, Sec. 5).
// Unknown --solver/--precond/--recovery names fail with a message listing
// every registered key. --recovery is honored when given; without it, the
// method follows --phi (phi > 0 selects ESR). Note --solver=pcg is the
// non-resilient reference: it requires --phi=0 (or --psi=0) since it
// tolerates no scheduled failures.
#include <cstdio>
#include <exception>

#include "engine/registry.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/reorder.hpp"
#include "util/options.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace rpcg;
  const Options opts_cli(argc, argv);

  std::string path = opts_cli.get_string("file", "");
  if (path.empty()) {
    path = "/tmp/rpcg_demo.mtx";
    write_matrix_market_file(path, fem2d_p1(64, 64));
    std::printf("no --file given; wrote a demo FEM matrix to %s\n", path.c_str());
  }

  CsrMatrix a = read_matrix_market_file(path);
  if (!a.is_symmetric(1e-10)) {
    std::fprintf(stderr, "matrix must be symmetric (SPD) for PCG\n");
    return 1;
  }
  if (opts_cli.get_bool("rcm", false)) {
    const Index before = a.bandwidth();
    a = a.permuted_symmetric(rcm_ordering(a));
    std::printf("RCM reordering: bandwidth %lld -> %lld\n",
                static_cast<long long>(before),
                static_cast<long long>(a.bandwidth()));
  }

  const int nodes = static_cast<int>(opts_cli.get_int("nodes", 32));
  const int phi = static_cast<int>(opts_cli.get_int("phi", 2));
  const int psi = static_cast<int>(opts_cli.get_int("psi", std::min(phi, 2)));
  const Index n = a.rows();
  const Index nnz = a.nnz();

  engine::Problem problem =
      engine::ProblemBuilder()
          .matrix(std::move(a))
          .nodes(nodes)
          .preconditioner(opts_cli.get_string("precond", "bjacobi"))
          .build();  // b = A * ones

  engine::SolverConfig config = engine::SolverConfig::from_options(opts_cli);
  config.phi = phi;
  // An explicit --recovery wins; otherwise the method follows --phi.
  if (!opts_cli.has("recovery"))
    config.recovery = phi > 0 ? RecoveryMethod::kEsr : RecoveryMethod::kNone;
  const std::string solver_name =
      opts_cli.get_string("solver", "resilient-pcg");
  auto& registry = engine::SolverRegistry::instance();
  const auto solver = registry.create(solver_name, config);

  // Place psi failures at the requested progress of a quick reference run.
  FailureSchedule schedule;
  const double fail_at = opts_cli.get_double("fail-at", 0.5);
  if (phi > 0 && psi > 0) {
    engine::SolverConfig ref_config = config;
    ref_config.recovery = RecoveryMethod::kNone;
    ref_config.phi = 0;
    DistVector x0 = problem.make_x();
    const auto ref_res =
        registry.create(solver_name, ref_config)->solve(problem, x0, {});
    const int at = std::max(1, static_cast<int>(fail_at * ref_res.iterations));
    schedule = FailureSchedule::contiguous(at, nodes / 2, psi);
    std::printf("scheduling %d failure(s) at iteration %d (ranks %d..%d)\n",
                psi, at, nodes / 2, nodes / 2 + psi - 1);
  }

  DistVector x = problem.make_x();
  const auto res = solver->solve(problem, x, schedule);
  std::printf("n=%lld nnz=%lld nodes=%d phi=%d | converged=%s iters=%d "
              "rel.res=%.2e sim time=%.5f s (recovery %.5f s)\n",
              static_cast<long long>(n), static_cast<long long>(nnz), nodes,
              phi, res.converged ? "yes" : "no", res.iterations,
              res.rel_residual, res.sim_time, res.recovery_sim_time());
  return res.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // Unknown registry keys, bad flag values, and solver/schedule conflicts
    // arrive here; the messages list the valid options.
    std::fprintf(stderr, "matrix_market_solve: %s\n", e.what());
    return 1;
  }
}
