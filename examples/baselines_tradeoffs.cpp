// ESR vs the classic alternatives, on one problem and one failure scenario:
//
//   * checkpoint/restart  — pays overhead on every run (writes), failures
//                           roll *all* nodes back and redo iterations;
//   * interpolation/restart (Langou et al.) — free when nothing fails, but a
//                           failure discards the Krylov space and costs
//                           extra iterations;
//   * ESR (this paper)    — small redundancy overhead each iteration, exact
//                           recovery, iteration trajectory preserved.
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace rpcg;

  const CsrMatrix a = poisson3d_7pt(22, 22, 22);
  const Partition part = Partition::block_rows(a.rows(), 32);
  DistVector b(part);
  {
    std::vector<double> ones(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> bg(static_cast<std::size_t>(a.rows()));
    a.spmv(ones, bg);
    b.set_global(bg);
  }
  const auto precond = make_preconditioner("bjacobi", a, part);
  const int psi = 3;

  std::printf("three node failures at mid-solve, 32 nodes, 3-D Poisson "
              "(n = %lld)\n\n",
              static_cast<long long>(a.rows()));
  std::printf("%-24s %12s %12s %8s %12s\n", "method", "no-fail [s]",
              "with-fail[s]", "iters", "recovery[s]");

  const auto run = [&](RecoveryMethod method, int phi, int ckpt_interval,
                       const char* label) {
    ResilientPcgOptions opts;
    opts.pcg.rtol = 1e-8;
    opts.method = method;
    opts.phi = phi;
    opts.checkpoint_interval = ckpt_interval;

    // Failure-free run.
    double t_nofail = 0.0;
    int iters_ref = 0;
    {
      Cluster cluster(part, CommParams{});
      ResilientPcg solver(cluster, a, *precond, opts);
      DistVector x(part);
      const auto res = solver.solve(b, x, {});
      t_nofail = res.sim_time;
      iters_ref = res.iterations;
    }
    // With psi simultaneous failures at half progress.
    Cluster cluster(part, CommParams{});
    ResilientPcg solver(cluster, a, *precond, opts);
    DistVector x(part);
    const auto res =
        solver.solve(b, x, FailureSchedule::contiguous(iters_ref / 2, 8, psi));
    std::printf("%-24s %12.5f %12.5f %8d %12.5f\n", label, t_nofail,
                res.sim_time, res.iterations,
                res.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
  };

  run(RecoveryMethod::kEsr, psi, 0, "esr (phi = 3)");
  run(RecoveryMethod::kCheckpointRestart, 0, 20, "checkpoint (every 20)");
  run(RecoveryMethod::kCheckpointRestart, 0, 100, "checkpoint (every 100)");
  run(RecoveryMethod::kInterpolationRestart, 0, 0, "interpolation-restart");
  return 0;
}
