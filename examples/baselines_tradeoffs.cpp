// ESR vs the classic alternatives, on one problem and one failure scenario:
//
//   * checkpoint/restart  — pays overhead on every run (writes), failures
//                           roll *all* nodes back and redo iterations;
//   * interpolation/restart (Langou et al.) — free when nothing fails, but a
//                           failure discards the Krylov space and costs
//                           extra iterations;
//   * ESR (this paper)    — small redundancy overhead each iteration, exact
//                           recovery, iteration trajectory preserved.
//
// Every method is the same registry solver ("resilient-pcg") under a
// different `recovery` config key — the engine API's whole point.
#include <cstdio>

#include "engine/registry.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace rpcg;

  engine::Problem problem = engine::ProblemBuilder()
                                .matrix(poisson3d_7pt(22, 22, 22))
                                .nodes(32)
                                .preconditioner("bjacobi")
                                .build();  // b = A * ones
  const int psi = 3;

  std::printf("three node failures at mid-solve, 32 nodes, 3-D Poisson "
              "(n = %lld)\n\n",
              static_cast<long long>(problem.matrix_global().rows()));
  std::printf("%-24s %12s %12s %8s %12s\n", "method", "no-fail [s]",
              "with-fail[s]", "iters", "recovery[s]");

  const auto run = [&](RecoveryMethod method, int phi, int ckpt_interval,
                       const char* label) {
    engine::SolverConfig config;
    config.recovery = method;
    config.phi = phi;
    config.checkpoint_interval = ckpt_interval;
    const auto solver =
        engine::SolverRegistry::instance().create("resilient-pcg", config);

    // Failure-free run.
    DistVector x0 = problem.make_x();
    const auto nofail = solver->solve(problem, x0);
    // With psi simultaneous failures at half progress.
    DistVector x = problem.make_x();
    const auto res = solver->solve(
        problem, x, FailureSchedule::contiguous(nofail.iterations / 2, 8, psi));
    std::printf("%-24s %12.5f %12.5f %8d %12.5f\n", label, nofail.sim_time,
                res.sim_time, res.iterations, res.recovery_sim_time());
  };

  run(RecoveryMethod::kEsr, psi, 0, "esr (phi = 3)");
  run(RecoveryMethod::kCheckpointRestart, 0, 20, "checkpoint (every 20)");
  run(RecoveryMethod::kCheckpointRestart, 0, 100, "checkpoint (every 100)");
  run(RecoveryMethod::kInterpolationRestart, 0, 0, "interpolation-restart");
  return 0;
}
