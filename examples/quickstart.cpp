// Quickstart: pick a solver from the registry, bundle a problem, and
// survive a node failure without checkpointing.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This is the README's "Architecture & engine API" snippet, verbatim:
// a Problem bundle built by name, a Solver picked from the registry by
// name, and one structured SolveReport out.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "engine/registry.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace rpcg;

  // A 96x96 Poisson system on 16 simulated nodes, block-Jacobi
  // preconditioner (by registry key), b = A * ones.
  engine::Problem problem = engine::ProblemBuilder()
                                .matrix(poisson2d_5pt(96, 96))
                                .nodes(16)
                                .preconditioner("bjacobi")
                                .build();

  // The resilient PCG engine with ESR and phi = 2 redundant copies.
  engine::SolverConfig config;
  config.recovery = RecoveryMethod::kEsr;
  config.phi = 2;
  const auto solver =
      engine::SolverRegistry::instance().create("resilient-pcg", config);

  // Solve while node 5 dies right after the SpMV of iteration 20: the lost
  // state is reconstructed exactly and the iteration continues unharmed.
  DistVector x = problem.make_x();
  const engine::SolveReport report =
      solver->solve(problem, x, FailureSchedule::contiguous(20, 5, 1));

  std::printf("%s\n", report.to_json().c_str());

  // The solution is the all-ones vector.
  double max_err = 0.0;
  for (const double v : x.gather_global())
    max_err = std::max(max_err, std::abs(v - 1.0));
  std::printf("max |x - 1|: %.3e\n", max_err);
  return report.converged && report.recoveries.size() == 1 && max_err < 1e-5
             ? 0
             : 1;
}
