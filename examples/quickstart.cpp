// Quickstart: solve an SPD system with the resilient PCG solver and survive
// a node failure without checkpointing.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The walkthrough:
//   1. build a sparse SPD matrix (2-D Poisson) and a right-hand side,
//   2. create a simulated 16-node cluster with a block-row partition,
//   3. configure ESR with phi = 2 redundant copies of the search directions,
//   4. schedule the failure of node 5 at iteration 20,
//   5. solve — the state of the failed node is reconstructed exactly and the
//      iteration continues as if nothing had happened.
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace rpcg;

  // 1. The problem: a 96x96 Poisson grid (n = 9216) with solution = 1.
  const CsrMatrix a = poisson2d_5pt(96, 96);
  std::vector<double> ones(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> b_global(static_cast<std::size_t>(a.rows()));
  a.spmv(ones, b_global);

  // 2. A 16-node simulated cluster (the paper's machine model: block-row
  //    data distribution, latency-bandwidth interconnect, fail-stop nodes).
  const Partition part = Partition::block_rows(a.rows(), 16);
  Cluster cluster(part, CommParams{});
  DistVector b(part);
  b.set_global(b_global);

  // 3. Resilient solver: block Jacobi preconditioner with exact block
  //    solves (the paper's setting) and ESR with phi = 2 copies.
  const auto precond = make_preconditioner("bjacobi", a, part);
  ResilientPcgOptions opts;
  opts.pcg.rtol = 1e-8;                  // the paper's termination criterion
  opts.method = RecoveryMethod::kEsr;    // exact state reconstruction
  opts.phi = 2;                          // tolerate up to 2 failures
  ResilientPcg solver(cluster, a, *precond, opts);

  // 4. Node 5 dies right after the SpMV of iteration 20.
  const FailureSchedule schedule = FailureSchedule::contiguous(20, 5, 1);

  // 5. Solve.
  DistVector x(part);  // initial guess 0
  const ResilientPcgResult res = solver.solve(b, x, schedule);

  std::printf("converged:            %s\n", res.converged ? "yes" : "no");
  std::printf("iterations:           %d\n", res.iterations);
  std::printf("relative residual:    %.3e\n", res.rel_residual);
  std::printf("true residual norm:   %.3e\n", res.true_residual_norm);
  std::printf("simulated time:       %.6f s\n", res.sim_time);
  std::printf("  of which recovery:  %.6f s\n",
              res.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
  std::printf("  of which copies:    %.6f s\n",
              res.sim_time_phase[static_cast<int>(Phase::kRedundancy)]);
  for (const auto& rec : res.recoveries) {
    std::printf("recovered node %d at iteration %d (%lld lost rows, local "
                "solve: %d iterations)\n",
                rec.nodes[0], rec.iteration,
                static_cast<long long>(rec.stats.lost_rows),
                rec.stats.local_solve_iterations);
  }

  // The solution is the all-ones vector.
  double max_err = 0.0;
  const auto xg = x.gather_global();
  for (const double v : xg) max_err = std::max(max_err, std::abs(v - 1.0));
  std::printf("max |x - 1|:          %.3e\n", max_err);
  return res.converged && max_err < 1e-5 ? 0 : 1;
}
