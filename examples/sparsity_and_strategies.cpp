// The sparsity pattern governs the cost of resilience (Sec. 5 of the paper).
//
// This example shows, without running a single solve, how the redundancy
// overhead of phi = 3 copies differs across sparsity patterns and
// backup-target strategies — and how an RCM reordering can move a matrix
// into the cheap regime by clustering its nonzeros near the diagonal.
#include <cstdio>

#include "core/redundancy.hpp"
#include "sim/dist_matrix.hpp"
#include "sparse/generators.hpp"
#include "sparse/reorder.hpp"
#include "util/rng.hpp"

namespace {

using namespace rpcg;

void report(const char* name, const CsrMatrix& a, int nodes, int phi) {
  const Partition part = Partition::block_rows(a.rows(), nodes);
  const DistMatrix dist = DistMatrix::distribute(a, part);
  const CommModel model{CommParams{}};
  const auto base = dist.scatter_plan().comm_cost_per_node(model);
  double base_max = 0.0;
  for (const double c : base) base_max = std::max(base_max, c);
  std::printf("%-34s bandwidth=%6lld, base SpMV comm: %.3e s/iter\n", name,
              static_cast<long long>(a.bandwidth()), base_max);
  for (const BackupStrategy strat :
       {BackupStrategy::kPaperAlternating, BackupStrategy::kGreedyOverlap,
        BackupStrategy::kRing, BackupStrategy::kRandom}) {
    const auto scheme =
        RedundancyScheme::build(dist.scatter_plan(), part, phi, strat, 3);
    std::printf("    %-18s extra elements/iter: %8lld, new messages: %4d, "
                "model overhead: %.3e s\n",
                to_string(strat).c_str(),
                static_cast<long long>(scheme.total_extra_elements()),
                scheme.extra_latency_messages(),
                scheme.per_iteration_overhead(model));
  }
}

}  // namespace

int main() {
  const int nodes = 32;
  const int phi = 3;
  std::printf("redundancy cost of phi = %d copies on %d nodes\n\n", phi, nodes);

  // A dense periodic band wide enough that every element already reaches
  // phi neighbours during SpMV: zero extra traffic (the Sec. 5 sweet spot).
  const Index n = 8192;
  report("periodic band, half-band 2n/N", banded_spd(n, 2 * n / nodes, 1.0, 1, true),
         nodes, phi);

  // A narrow band: elements reach only 1 neighbour, copies must be added,
  // but they piggyback on existing messages.
  report("narrow band, half-band n/(4N)", banded_spd(n, n / (4 * nodes), 1.0, 1, true),
         nodes, phi);

  // A circuit-like irregular pattern with long-range couplings.
  report("circuit-like (irregular)", circuit_like(90, 90, 0.02, 5), nodes, phi);

  // A diagonal matrix: the worst case — every copy is extra traffic on a
  // fresh connection.
  report("diagonal (no SpMV traffic)", CsrMatrix::identity(n), nodes, phi);

  // RCM: scramble a banded matrix, then restore locality by reordering.
  // Note what moves: scrambling barely changes the *redundancy* overhead
  // (elements are scattered to >= phi nodes anyway, so the copies ride for
  // free) — it explodes the *base* SpMV communication. RCM restores the
  // band, collapsing the base cost again. Resilience is cheap exactly when
  // the matrix is communicated like a band matrix.
  {
    const CsrMatrix banded = banded_spd(n, 2 * n / nodes, 1.0, 2, true);
    Rng rng(13);
    std::vector<Index> shuffle(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) shuffle[static_cast<std::size_t>(i)] = i;
    for (std::size_t i = shuffle.size() - 1; i > 0; --i)
      std::swap(shuffle[i], shuffle[rng.uniform_index(i + 1)]);
    const CsrMatrix scrambled = banded.permuted_symmetric(shuffle);
    std::printf("\n-- the same band matrix, randomly permuted --\n");
    report("scrambled band", scrambled, nodes, phi);
    const auto rcm = rcm_ordering(scrambled);
    std::printf("-- after RCM reordering --\n");
    report("RCM(scrambled band)", scrambled.permuted_symmetric(rcm), nodes, phi);
  }
  return 0;
}
