// Sec. 4.2 of the paper: the communication overhead of distributing the phi
// redundant copies lies between 0 and phi * (lambda_max + ceil(n/N) mu).
// This bench measures the model overhead per iteration for every matrix and
// phi = 1..8 and reports it against the analytic upper bound.
#include <cstdio>

#include "bench_support.hpp"
#include "core/redundancy.hpp"
#include "sim/dist_matrix.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  print_header("Sec. 4.2 bound check: per-iteration redundancy overhead vs "
               "phi (lambda_max + ceil(n/N) mu)",
               args);
  std::printf("%-4s %4s %14s %14s %8s %12s %12s\n", "ID", "phi", "overhead[s]",
              "bound[s]", "ratio", "extra elems", "extra lat.");

  const CommModel model{CommParams{}};
  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    const Partition part = Partition::block_rows(mat.matrix.rows(), args.nodes);
    const DistMatrix dist = DistMatrix::distribute(mat.matrix, part);
    for (int phi = 1; phi <= 8; ++phi) {
      const auto scheme =
          RedundancyScheme::build(dist.scatter_plan(), part, phi,
                                  BackupStrategy::kPaperAlternating);
      const double overhead = scheme.per_iteration_overhead(model);
      const double bound = scheme.paper_upper_bound(model, part);
      std::printf("%-4s %4d %14.3e %14.3e %8.3f %12lld %12d%s\n",
                  mat.id.c_str(), phi, overhead, bound, overhead / bound,
                  static_cast<long long>(scheme.total_extra_elements()),
                  scheme.extra_latency_messages(),
                  overhead <= bound ? "" : "  VIOLATION");
    }
    std::fflush(stdout);
  }
  return 0;
}
