// Fig. 2 of the paper: matrix M1 (parabolic_fem analogue), failures at the
// start (lower indices) of the vectors. The paper highlights that a run with
// failures can occasionally finish *faster* than the failure-free run when
// the reconstruction perturbs the iteration into earlier convergence.
#include "bench_support.hpp"

int main(int argc, char** argv) {
  return rpcg::bench::run_figure(1, rpcg::repro::FailureLocation::kStart, argc,
                                 argv, "Fig. 2");
}
