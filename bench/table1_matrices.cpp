// Regenerates Table 1 of the paper: the eight SPD test problems (problem
// type, n, NNZ) — here the paper's SuiteSparse originals side by side with
// the generated analogues actually used in the experiments.
#include <cstdio>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  print_header("Table 1: SPD test matrices (paper original vs generated analogue)",
               args);

  std::printf("%-4s %-14s %-20s %12s %12s | %10s %11s %8s\n", "Id", "Name",
              "Problem type", "paper n", "paper NNZ", "n", "NNZ",
              "nnz/row");
  for (const long idx : args.matrices) {
    const auto m = repro::make_matrix(static_cast<int>(idx), args.scale);
    std::printf("%-4s %-14s %-20s %12lld %12lld | %10lld %11lld %8.1f\n",
                m.id.c_str(), m.paper_name.c_str(), m.problem_type.c_str(),
                static_cast<long long>(m.paper_n),
                static_cast<long long>(m.paper_nnz),
                static_cast<long long>(m.matrix.rows()),
                static_cast<long long>(m.matrix.nnz()),
                static_cast<double>(m.matrix.nnz()) /
                    static_cast<double>(m.matrix.rows()));
  }
  return 0;
}
