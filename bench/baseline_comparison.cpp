// Context for the paper's related-work positioning (Sec. 1.2/2.2): ESR vs
// the checkpoint/restart and interpolation-restart baselines on the same
// failure scenario — failure-free overhead, time with psi failures, and
// iterations to convergence.
//
// The second half is the checkpoint-vs-ESR crossover study: the costed
// "checkpoint-recovery" solver against ESR on one matrix, sweeping the
// per-element checkpoint charge across orders of magnitude. Cheap
// checkpoints beat ESR's per-iteration redundancy push; expensive ones lose
// to it. The study self-gates: if no cost multiplier flips the winner, the
// bench exits nonzero — the crossover IS the result.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "core/checkpoint.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int psi = static_cast<int>(o.get_int("psi", 3));
  const int ckpt_interval = static_cast<int>(o.get_int("ckpt-interval", 25));

  char title[160];
  std::snprintf(title, sizeof title,
                "Baseline comparison: ESR (phi = %d) vs checkpoint/restart "
                "(interval %d) vs interpolation-restart, psi = %d failures at "
                "center, 50%% progress",
                psi, ckpt_interval, psi);
  print_header(title, args);
  std::printf("%-4s %-22s %13s %13s %10s %12s\n", "ID", "method",
              "no-fail t [s]", "fail t [s]", "iters", "recovery[s]");

  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    repro::ExperimentRunner runner(mat.matrix, args.config());
    const auto loc = repro::FailureLocation::kCenter;

    // ESR.
    {
      const auto nofail = runner.run_undisturbed(psi, 1);
      const auto fail = runner.run_with_failures(psi, psi, loc, 0.5, 2);
      std::printf("%-4s %-22s %13.4f %13.4f %10d %12.4f\n", mat.id.c_str(),
                  "esr", nofail.sim_time, fail.sim_time, fail.iterations,
                  fail.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
    }
    // Checkpoint/restart.
    {
      const auto nofail = runner.run_baseline_failure_free(
          RecoveryMethod::kCheckpointRestart, ckpt_interval, 1);
      const auto fail = runner.run_baseline(
          RecoveryMethod::kCheckpointRestart, psi, loc, 0.5, ckpt_interval, 2);
      std::printf("%-4s %-22s %13.4f %13.4f %10d %12.4f\n", mat.id.c_str(),
                  "checkpoint-restart", nofail.sim_time, fail.sim_time,
                  fail.iterations,
                  fail.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
    }
    // Interpolation-restart.
    {
      const auto nofail = runner.run_reference(1);  // zero failure-free overhead
      const auto fail = runner.run_baseline(
          RecoveryMethod::kInterpolationRestart, psi, loc, 0.5, 0, 2);
      std::printf("%-4s %-22s %13.4f %13.4f %10d %12.4f\n", mat.id.c_str(),
                  "interpolation-restart", nofail.sim_time, fail.sim_time,
                  fail.iterations,
                  fail.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
    }
    std::fflush(stdout);
  }

  // ---- checkpoint-vs-ESR crossover study ---------------------------------
  // One matrix (the first requested), psi contiguous failures at the center
  // at 50% progress, the per-element checkpoint charge swept over orders of
  // magnitude from the interconnect's per-double cost. ESR's failed-run time
  // is constant across the sweep; the costed checkpoint-recovery solver's
  // time grows with the charge, so the winner must flip somewhere — the
  // bench self-gates on that flip existing.
  const long study_idx = args.matrices.front();
  const auto study_mat = repro::make_matrix(static_cast<int>(study_idx),
                                            args.scale);
  repro::ExperimentRunner study(study_mat.matrix, args.config());
  const double base_charge = args.config().comm.per_double_s;
  const std::vector<double> multipliers{1.0, 32.0, 1024.0, 32768.0,
                                        1048576.0};

  std::printf("\nCheckpoint-vs-ESR crossover (matrix %s, interval %d, "
              "in-memory medium): failed-run time [s]\n",
              study_mat.id.c_str(), ckpt_interval);
  std::printf("%-4s %-12s %13s %13s %10s\n", "psi", "cost-mult",
              "ckpt t [s]", "esr t [s]", "winner");

  bool crossover_found = false;
  for (const int study_psi : {1, 3}) {
    const auto esr = study.run_with_failures(study_psi, study_psi,
                                             repro::FailureLocation::kCenter,
                                             0.5, 2);
    FailureEvent ev;
    ev.iteration = study.failure_iteration(0.5);
    for (int k = 0; k < study_psi; ++k) {
      ev.nodes.push_back(study.first_rank(repro::FailureLocation::kCenter) +
                         k);
    }
    FailureSchedule schedule;
    schedule.add(ev);

    bool first_ckpt_wins = false;
    bool series_flipped = false;
    double flip_multiplier = 0.0;
    for (std::size_t i = 0; i < multipliers.size(); ++i) {
      engine::SolverConfig cfg = study.base_config();
      cfg.checkpoint_interval = ckpt_interval;
      cfg.checkpoint.medium = CheckpointMedium::kMemory;
      cfg.checkpoint.write_per_element_s = base_charge * multipliers[i];
      cfg.checkpoint.read_per_element_s = base_charge * multipliers[i];
      const auto ckpt =
          study.run_solver("checkpoint-recovery", cfg, schedule, 2);
      const bool ckpt_wins = ckpt.sim_time < esr.sim_time;
      if (i == 0) first_ckpt_wins = ckpt_wins;
      if (!series_flipped && ckpt_wins != first_ckpt_wins) {
        series_flipped = true;
        flip_multiplier = multipliers[i];
      }
      std::printf("%-4d %-12.0f %13.4f %13.4f %10s\n", study_psi,
                  multipliers[i], ckpt.sim_time, esr.sim_time,
                  ckpt_wins ? "ckpt" : "esr");
    }
    if (series_flipped) {
      crossover_found = true;
      std::printf("  -> psi = %d: winner flips from %s to %s at cost "
                  "multiplier %.0f\n",
                  study_psi, first_ckpt_wins ? "ckpt" : "esr",
                  first_ckpt_wins ? "esr" : "ckpt", flip_multiplier);
    } else {
      std::printf("  -> psi = %d: no crossover inside the sweep (%s always "
                  "wins)\n",
                  study_psi, first_ckpt_wins ? "ckpt" : "esr");
    }
    std::fflush(stdout);
  }

  if (!crossover_found) {
    std::fprintf(stderr,
                 "baseline_comparison: checkpoint-vs-ESR crossover missing — "
                 "no cost multiplier flips the winner in any psi series\n");
    return 1;
  }
  return 0;
}
