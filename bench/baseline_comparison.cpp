// Context for the paper's related-work positioning (Sec. 1.2/2.2): ESR vs
// the checkpoint/restart and interpolation-restart baselines on the same
// failure scenario — failure-free overhead, time with psi failures, and
// iterations to convergence.
#include <cstdio>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int psi = static_cast<int>(o.get_int("psi", 3));
  const int ckpt_interval = static_cast<int>(o.get_int("ckpt-interval", 25));

  char title[160];
  std::snprintf(title, sizeof title,
                "Baseline comparison: ESR (phi = %d) vs checkpoint/restart "
                "(interval %d) vs interpolation-restart, psi = %d failures at "
                "center, 50%% progress",
                psi, ckpt_interval, psi);
  print_header(title, args);
  std::printf("%-4s %-22s %13s %13s %10s %12s\n", "ID", "method",
              "no-fail t [s]", "fail t [s]", "iters", "recovery[s]");

  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    repro::ExperimentRunner runner(mat.matrix, args.config());
    const auto loc = repro::FailureLocation::kCenter;

    // ESR.
    {
      const auto nofail = runner.run_undisturbed(psi, 1);
      const auto fail = runner.run_with_failures(psi, psi, loc, 0.5, 2);
      std::printf("%-4s %-22s %13.4f %13.4f %10d %12.4f\n", mat.id.c_str(),
                  "esr", nofail.sim_time, fail.sim_time, fail.iterations,
                  fail.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
    }
    // Checkpoint/restart.
    {
      const auto nofail = runner.run_baseline_failure_free(
          RecoveryMethod::kCheckpointRestart, ckpt_interval, 1);
      const auto fail = runner.run_baseline(
          RecoveryMethod::kCheckpointRestart, psi, loc, 0.5, ckpt_interval, 2);
      std::printf("%-4s %-22s %13.4f %13.4f %10d %12.4f\n", mat.id.c_str(),
                  "checkpoint-restart", nofail.sim_time, fail.sim_time,
                  fail.iterations,
                  fail.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
    }
    // Interpolation-restart.
    {
      const auto nofail = runner.run_reference(1);  // zero failure-free overhead
      const auto fail = runner.run_baseline(
          RecoveryMethod::kInterpolationRestart, psi, loc, 0.5, 0, 2);
      std::printf("%-4s %-22s %13.4f %13.4f %10d %12.4f\n", mat.id.c_str(),
                  "interpolation-restart", nofail.sim_time, fail.sim_time,
                  fail.iterations,
                  fail.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
    }
    std::fflush(stdout);
  }
  return 0;
}
