// Regenerates Table 2 of the paper: for every matrix the reference time t0,
// the failure-free ("undisturbed") overhead of keeping phi in {1,3,8}
// redundant copies, and — for psi = phi simultaneous failures placed in
// contiguous ranks at the start (rank 0) and center (rank N/2), aggregated
// over 20/50/80 % progress — the relative reconstruction time and the total
// overhead with failures, each as mean +/- stddev.
#include <cstdio>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const std::vector<long> phis = o.get_int_list("phis", {1, 3, 8});
  const double progresses[] = {0.2, 0.5, 0.8};

  print_header("Table 2: runtime overheads of the ESR-capable PCG solver", args);
  std::printf(
      "# t0: reference (non-resilient) solve time. 'undist ov%%': failure-free\n"
      "# overhead of phi redundant copies. Per failure location: 'recon%%' =\n"
      "# reconstruction time / t0, 'fail ov%%' = total overhead with psi = phi\n"
      "# simultaneous failures; both aggregated over failures at 20/50/80%%\n"
      "# progress x %d reps.\n\n",
      args.reps);

  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    repro::ExperimentRunner runner(mat.matrix, args.config());

    std::vector<double> t0_samples;
    for (int r = 0; r < args.reps; ++r)
      t0_samples.push_back(runner.run_reference(1000 + r).sim_time);
    const double t0 = summarize(t0_samples).mean;
    std::printf("%-3s t0 = %8.4f s  (ref iters: %d)\n", mat.id.c_str(), t0,
                runner.reference_iterations());

    std::printf("    undisturbed overhead:");
    for (const long phi : phis) {
      std::vector<double> samples;
      for (int r = 0; r < args.reps; ++r)
        samples.push_back(
            runner.run_undisturbed(static_cast<int>(phi), 2000 + r).sim_time);
      std::printf("  phi=%ld: %5.1f%%", phi,
                  repro::overhead_pct(summarize(samples).mean, t0));
    }
    std::printf("\n");

    for (const auto loc :
         {repro::FailureLocation::kStart, repro::FailureLocation::kCenter}) {
      std::printf("    %-6s |", repro::to_string(loc).c_str());
      std::string recon_cols, total_cols;
      for (const long phi : phis) {
        std::vector<double> recon_pct, total_pct;
        int seed = 3000;
        for (const double progress : progresses) {
          for (int r = 0; r < args.reps; ++r) {
            const auto res = runner.run_with_failures(
                static_cast<int>(phi), static_cast<int>(phi), loc, progress,
                static_cast<std::uint64_t>(seed++));
            recon_pct.push_back(
                100.0 *
                res.sim_time_phase[static_cast<int>(Phase::kRecovery)] / t0);
            total_pct.push_back(repro::overhead_pct(res.sim_time, t0));
          }
        }
        char buf[96];
        std::snprintf(buf, sizeof buf, "  recon(%ld)=%s%%", phi,
                      mean_pm_std(summarize(recon_pct), 1).c_str());
        recon_cols += buf;
        std::snprintf(buf, sizeof buf, "  fail.ov(%ld)=%s%%", phi,
                      mean_pm_std(summarize(total_pct), 1).c_str());
        total_cols += buf;
      }
      std::printf("%s |%s\n", recon_cols.c_str(), total_cols.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
