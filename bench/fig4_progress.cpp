// Fig. 4 of the paper: matrix M5 analogue, three node failures at the center,
// introduced at 20/50/80 % of the solver's progress. Expected shape: the
// failure iteration has little influence on the total runtime.
#include <cstdio>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int phi = static_cast<int>(o.get_int("phi", 3));
  const int matrix = static_cast<int>(o.get_int("matrix", 5));

  const auto mat = repro::make_matrix(matrix, args.scale);
  repro::ExperimentRunner runner(mat.matrix, args.config());
  char title[128];
  std::snprintf(title, sizeof title,
                "Fig. 4: %s, %d failures at center vs progress at failure",
                mat.id.c_str(), phi);
  print_header(title, args);

  int seed = 400;
  for (const double progress : {0.2, 0.5, 0.8}) {
    std::vector<double> samples;
    for (int r = 0; r < std::max(args.reps, 5); ++r) {
      samples.push_back(runner
                            .run_with_failures(phi, phi,
                                               repro::FailureLocation::kCenter,
                                               progress,
                                               static_cast<std::uint64_t>(seed++))
                            .sim_time);
    }
    char label[64];
    std::snprintf(label, sizeof label, "progress %2.0f%%", 100.0 * progress);
    print_box(label, summarize(samples));
  }
  return 0;
}
