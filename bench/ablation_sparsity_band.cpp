// Sec. 5 of the paper: the redundancy overhead is governed by the sparsity
// pattern. Sweeping the half-bandwidth of a (periodic) banded matrix shows
// the predicted transition: once the matrix is dense within a band of
// half-width phi*n/(2N) around the diagonal, every element already reaches
// its phi designated backups during SpMV and the extra traffic vanishes.
#include <cstdio>

#include "bench_support.hpp"
#include "core/redundancy.hpp"
#include "sim/dist_matrix.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const Index n = o.get_int("n", 8192);
  const int phi = static_cast<int>(o.get_int("phi", 3));
  print_header("Sec. 5 ablation: extra traffic vs matrix bandwidth "
               "(periodic band, density 1)",
               args);
  const Index block = n / args.nodes;
  const Index threshold = phi * block / 2 + (phi * block % 2 != 0 ? 1 : 0);
  std::printf("n=%lld, N=%d, phi=%d -> zero-overhead threshold at half-band "
              ">= ceil(phi*n/(2N)) = %lld\n\n",
              static_cast<long long>(n), args.nodes, phi,
              static_cast<long long>(threshold));
  std::printf("%10s %14s %14s %14s\n", "half-band", "extra elems",
              "extra lat.", "overhead [s]");

  const CommModel model{CommParams{}};
  for (const Index hb :
       {block / 8, block / 4, block / 2, block, (3 * block) / 2, 2 * block,
        threshold, threshold + block / 4}) {
    if (hb < 1) continue;
    const CsrMatrix a = banded_spd(n, hb, 1.0, 11, /*periodic=*/true);
    const Partition part = Partition::block_rows(n, args.nodes);
    const DistMatrix dist = DistMatrix::distribute(a, part);
    const auto scheme = RedundancyScheme::build(
        dist.scatter_plan(), part, phi, BackupStrategy::kPaperAlternating);
    std::printf("%10lld %14lld %14d %14.3e\n", static_cast<long long>(hb),
                static_cast<long long>(scheme.total_extra_elements()),
                scheme.extra_latency_messages(),
                scheme.per_iteration_overhead(model));
    std::fflush(stdout);
  }
  return 0;
}
