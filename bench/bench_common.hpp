// Shared helpers for the reproduction benches: option handling and table
// printing. Every bench binary accepts
//   --scale S     problem size = paper size / S          (default 16)
//   --nodes N     simulated cluster size                 (default 128)
//   --reps R      repetitions per configuration          (default 3)
//   --noise CV    timing jitter coefficient of variation (default 0.02)
//   --matrices L  comma-separated matrix indices, e.g. 1,5,8 (default all)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "repro/harness.hpp"
#include "repro/matrices.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

namespace rpcg::bench {

struct CommonArgs {
  double scale = 16.0;
  int nodes = 128;
  int reps = 3;
  double noise = 0.02;
  std::vector<long> matrices{1, 2, 3, 4, 5, 6, 7, 8};

  static CommonArgs parse(int argc, char** argv) {
    const Options o(argc, argv);
    CommonArgs a;
    a.scale = o.get_double("scale", a.scale);
    a.nodes = static_cast<int>(o.get_int("nodes", a.nodes));
    a.reps = static_cast<int>(o.get_int("reps", a.reps));
    a.noise = o.get_double("noise", a.noise);
    a.matrices = o.get_int_list("matrices", a.matrices);
    return a;
  }

  [[nodiscard]] repro::ExperimentConfig config() const {
    repro::ExperimentConfig cfg;
    cfg.num_nodes = nodes;
    cfg.reps = reps;
    cfg.noise_cv = noise;
    return cfg;
  }
};

inline void print_header(const std::string& title, const CommonArgs& a) {
  std::printf("# %s\n", title.c_str());
  std::printf("# scale=1/%.0f of paper size, N=%d simulated nodes, reps=%d, "
              "noise cv=%.2f, times are model (simulated) seconds\n",
              a.scale, a.nodes, a.reps, a.noise);
}

inline void print_box(const char* label, const Summary& s) {
  std::printf("%-28s med=%9.4f  q1=%9.4f  q3=%9.4f  whiskers=[%9.4f, %9.4f]\n",
              label, s.median, s.q1, s.q3, s.whisker_lo, s.whisker_hi);
}

}  // namespace rpcg::bench
