// Google-benchmark microbenchmarks of the kernels underlying the solver:
// sequential SpMV, the distributed SpMV with halo exchange, preconditioner
// applications, the factorizations, the redundancy-scheme construction, and
// the backup record/gather path. Real wall-clock time (the table/figure
// benches report model time; these kernels are what the compute model
// abstracts).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/backup_store.hpp"
#include "core/redundancy.hpp"
#include "precond/block_jacobi.hpp"
#include "repro/matrices.hpp"
#include "sim/collectives.hpp"
#include "sim/dist_matrix.hpp"
#include "sparse/generators.hpp"
#include "sparse/ic0.hpp"
#include "sparse/ldlt.hpp"

namespace {

using namespace rpcg;

CsrMatrix bench_matrix() { return poisson3d_7pt(24, 24, 24); }  // 13824 rows

// One scale-8 node block (64-node partition) of the M1 (banded FEM) and the
// M2 (random-pattern) reproduction matrices — the exact inputs of the block
// Jacobi hot path whose ordering-selection policy these benches isolate.
CsrMatrix repro_node_block(int matrix_index) {
  const auto m = repro::make_matrix(matrix_index, 8.0);
  const Partition part = Partition::block_rows(m.matrix.rows(), 64);
  const auto rows = part.rows_of(0);
  return m.matrix.submatrix(rows, rows);
}

// Ordering x supernodal sweep over the LDLᵀ factor/solve kernels. Arg pairs:
// (0) matrix: 1 = M1-band block, 2 = M2-random block;
// (1) ordering: 0 = natural, 1 = RCM, 2 = AMD;
// (2) supernodal panels: 0 = scalar sweeps, 1 = packed.
void ldlt_sweep_args(benchmark::internal::Benchmark* b) {
  for (const long matrix : {1, 2})
    for (const long ordering : {0, 1, 2})
      for (const long supernodal : {0, 1})
        b->Args({matrix, ordering, supernodal});
}

void BM_LdltOrderedFactor(benchmark::State& state) {
  const CsrMatrix a = repro_node_block(static_cast<int>(state.range(0)));
  const auto ordering = static_cast<LdltOrdering>(state.range(1));
  const bool supernodal = state.range(2) != 0;
  for (auto _ : state) {
    auto f = ReorderedLdlt::factor_with(a, ordering, supernodal);
    benchmark::DoNotOptimize(f->l_nnz());
  }
  const auto f = ReorderedLdlt::factor_with(a, ordering, supernodal);
  state.counters["l_nnz"] = static_cast<double>(f->l_nnz());
}
BENCHMARK(BM_LdltOrderedFactor)->Apply(ldlt_sweep_args);

void BM_LdltOrderedSolve(benchmark::State& state) {
  const CsrMatrix a = repro_node_block(static_cast<int>(state.range(0)));
  const auto ordering = static_cast<LdltOrdering>(state.range(1));
  const bool supernodal = state.range(2) != 0;
  const auto f = ReorderedLdlt::factor_with(a, ordering, supernodal);
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> x(b.size());
  for (auto _ : state) {
    f->solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * f->l_nnz());
  state.counters["supernodal"] =
      f->factorization().supernodal() ? 1.0 : 0.0;
}
BENCHMARK(BM_LdltOrderedSolve)->Apply(ldlt_sweep_args);

void BM_LdltAutoSelectedSolve(benchmark::State& state) {
  // The production path: ReorderedLdlt::factor's own candidate selection.
  const CsrMatrix a = repro_node_block(static_cast<int>(state.range(0)));
  const auto f = ReorderedLdlt::factor(a);
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> x(b.size());
  for (auto _ : state) {
    f->solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["ordering"] = static_cast<double>(f->ordering());
  state.counters["l_nnz"] = static_cast<double>(f->l_nnz());
}
BENCHMARK(BM_LdltAutoSelectedSolve)->Arg(1)->Arg(2);

void BM_SeqSpmv(benchmark::State& state) {
  const CsrMatrix a = bench_matrix();
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SeqSpmv);

void BM_DistSpmv(benchmark::State& state) {
  const CsrMatrix a = bench_matrix();
  const Partition part =
      Partition::block_rows(a.rows(), static_cast<int>(state.range(0)));
  Cluster cluster(part, CommParams{});
  const DistMatrix d = DistMatrix::distribute(a, part);
  DistVector x(part), y(part);
  std::vector<double> g(static_cast<std::size_t>(a.rows()), 1.0);
  x.set_global(g);
  std::vector<std::vector<double>> halos;
  for (auto _ : state) {
    d.spmv(cluster, x, y, halos, Phase::kIteration);
    benchmark::DoNotOptimize(y.block(0).data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_DistSpmv)->Arg(16)->Arg(64)->Arg(128);

void BM_BlockJacobiApply(benchmark::State& state) {
  const CsrMatrix a = bench_matrix();
  const Partition part = Partition::block_rows(a.rows(), 64);
  Cluster cluster(part, CommParams{});
  const BlockJacobiPreconditioner m(a, part);
  DistVector r(part), z(part);
  std::vector<double> g(static_cast<std::size_t>(a.rows()), 1.0);
  r.set_global(g);
  for (auto _ : state) {
    m.apply(cluster, r, z, Phase::kIteration);
    benchmark::DoNotOptimize(z.block(0).data());
  }
}
BENCHMARK(BM_BlockJacobiApply);

void BM_LdltFactor(benchmark::State& state) {
  const CsrMatrix a =
      poisson2d_5pt(static_cast<Index>(state.range(0)), state.range(0));
  for (auto _ : state) {
    auto f = SparseLdlt::factor(a);
    benchmark::DoNotOptimize(f->l_nnz());
  }
}
BENCHMARK(BM_LdltFactor)->Arg(16)->Arg(32)->Arg(64);

void BM_Ic0FactorAndSolve(benchmark::State& state) {
  const CsrMatrix a = poisson2d_5pt(48, 48);
  const auto ic = Ic0::factor(a);
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> x(b.size());
  for (auto _ : state) {
    ic->solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_Ic0FactorAndSolve);

void BM_RedundancySchemeBuild(benchmark::State& state) {
  const CsrMatrix a = bench_matrix();
  const Partition part = Partition::block_rows(a.rows(), 128);
  const DistMatrix d = DistMatrix::distribute(a, part);
  const int phi = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto scheme = RedundancyScheme::build(d.scatter_plan(), part, phi,
                                          BackupStrategy::kPaperAlternating);
    benchmark::DoNotOptimize(scheme.total_extra_elements());
  }
}
BENCHMARK(BM_RedundancySchemeBuild)->Arg(1)->Arg(3)->Arg(8);

void BM_BackupRecord(benchmark::State& state) {
  const CsrMatrix a = bench_matrix();
  const Partition part = Partition::block_rows(a.rows(), 128);
  const DistMatrix d = DistMatrix::distribute(a, part);
  const auto scheme = RedundancyScheme::build(d.scatter_plan(), part, 3,
                                              BackupStrategy::kPaperAlternating);
  BackupStore store;
  store.configure(d.scatter_plan(), scheme, part);
  DistVector p(part);
  std::vector<double> g(static_cast<std::size_t>(a.rows()), 1.0);
  p.set_global(g);
  for (auto _ : state) {
    store.record(p);
  }
}
BENCHMARK(BM_BackupRecord);

void BM_GatherLost(benchmark::State& state) {
  const CsrMatrix a = bench_matrix();
  const Partition part = Partition::block_rows(a.rows(), 128);
  const DistMatrix d = DistMatrix::distribute(a, part);
  const auto scheme = RedundancyScheme::build(d.scatter_plan(), part, 3,
                                              BackupStrategy::kPaperAlternating);
  BackupStore store;
  store.configure(d.scatter_plan(), scheme, part);
  DistVector p(part);
  std::vector<double> g(static_cast<std::size_t>(a.rows()), 1.0);
  p.set_global(g);
  store.record(p);
  store.record(p);
  Cluster cluster(part, CommParams{});
  for (NodeId f = 0; f < 3; ++f) cluster.fail_node(f);
  const auto rows = part.rows_of_set(std::vector<NodeId>{0, 1, 2});
  for (auto _ : state) {
    auto got = store.gather_lost(cluster, rows);
    benchmark::DoNotOptimize(got.gens[0].data());
  }
}
BENCHMARK(BM_GatherLost);

void BM_DotPair(benchmark::State& state) {
  const Partition part = Partition::block_rows(1 << 20, 128);
  Cluster cluster(part, CommParams{});
  DistVector r(part), z(part);
  std::vector<double> g(static_cast<std::size_t>(part.n()), 1.5);
  r.set_global(g);
  z.set_global(g);
  for (auto _ : state) {
    auto d = dot_pair(cluster, r, z, Phase::kIteration);
    benchmark::DoNotOptimize(d.rz);
  }
}
BENCHMARK(BM_DotPair);

}  // namespace

BENCHMARK_MAIN();
