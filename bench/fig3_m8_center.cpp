// Fig. 3 of the paper: matrix M8 (audikw_1 analogue, the widest band),
// failures at the center. Expected shape: the overhead grows superlinearly
// with the number of copies but stays small (the dense band already carries
// most elements to their backups during SpMV).
#include "bench_support.hpp"

int main(int argc, char** argv) {
  return rpcg::bench::run_figure(8, rpcg::repro::FailureLocation::kCenter, argc,
                                 argv, "Fig. 3");
}
