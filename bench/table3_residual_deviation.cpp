// Regenerates Table 3 of the paper: the relative residual difference metric
// of Eqn. 7,  Delta = (||r_solver|| - ||b - A x||) / ||b - A x||, comparing
// the maximum Delta_ESR over all failure experiments of a matrix against
// Delta_PCG of the failure-free reference run. ESR's finite-precision
// reconstruction must not degrade the solver accuracy.
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const std::vector<long> phis = o.get_int_list("phis", {1, 3, 8});

  print_header("Table 3: relative residual difference (Eqn. 7)", args);
  std::printf("%-4s %16s %16s\n", "ID", "max |Delta_ESR|", "Delta_PCG");

  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    repro::ExperimentRunner runner(mat.matrix, args.config());

    const auto ref = runner.run_reference(1);
    double max_esr = 0.0;
    for (const long phi : phis) {
      for (const auto loc :
           {repro::FailureLocation::kStart, repro::FailureLocation::kCenter}) {
        for (const double progress : {0.2, 0.5, 0.8}) {
          const auto res = runner.run_with_failures(
              static_cast<int>(phi), static_cast<int>(phi), loc, progress, 7);
          if (std::abs(res.delta_metric) > std::abs(max_esr))
            max_esr = res.delta_metric;
        }
      }
    }
    std::printf("%-4s %16.3e %16.3e\n", mat.id.c_str(), max_esr,
                ref.delta_metric);
    std::fflush(stdout);
  }
  return 0;
}
