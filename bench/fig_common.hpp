// Shared driver for Figs. 1-3 of the paper: for one matrix and one failure
// location, print the reference band, and for copies in {1,3,8} the box
// statistics of failure-free runs (blue boxes) and runs with psi = phi
// simultaneous failures at 20/50/80 % progress (orange boxes), plus the
// relative overhead of the box medians.
#pragma once

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace rpcg::bench {

inline int run_figure(int matrix_index, repro::FailureLocation loc, int argc,
                      char** argv, const char* figure_name) {
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const std::vector<long> phis = o.get_int_list("phis", {1, 3, 8});

  const auto mat = repro::make_matrix(matrix_index, args.scale);
  repro::ExperimentRunner runner(mat.matrix, args.config());

  char title[160];
  std::snprintf(title, sizeof title, "%s: %s, failures at %s", figure_name,
                mat.id.c_str(), repro::to_string(loc).c_str());
  print_header(title, args);

  std::vector<double> ref_samples;
  for (int r = 0; r < args.reps; ++r)
    ref_samples.push_back(runner.run_reference(100 + r).sim_time);
  const Summary ref = summarize(ref_samples);
  std::printf("reference PCG: %s s (band: +/- one stddev)\n\n",
              mean_pm_std(ref, 4).c_str());

  for (const long phi : phis) {
    std::vector<double> undisturbed;
    for (int r = 0; r < args.reps; ++r)
      undisturbed.push_back(
          runner.run_undisturbed(static_cast<int>(phi), 200 + r).sim_time);
    const Summary u = summarize(undisturbed);

    std::vector<double> with_failures;
    int seed = 300;
    for (const double progress : {0.2, 0.5, 0.8}) {
      for (int r = 0; r < args.reps; ++r) {
        with_failures.push_back(
            runner
                .run_with_failures(static_cast<int>(phi), static_cast<int>(phi),
                                   loc, progress,
                                   static_cast<std::uint64_t>(seed++))
                .sim_time);
      }
    }
    const Summary w = summarize(with_failures);

    std::printf("copies/failures = %ld\n", phi);
    char label[64];
    std::snprintf(label, sizeof label, "  no failures (blue box)");
    print_box(label, u);
    std::snprintf(label, sizeof label, "  %ld failures (orange box)", phi);
    print_box(label, w);
    std::printf("  relative overhead: undisturbed %+.1f%%, with failures %+.1f%%\n\n",
                repro::overhead_pct(u.median, ref.mean),
                repro::overhead_pct(w.median, ref.mean));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace rpcg::bench
