// Fig. 1 of the paper: matrix M5 (Emilia_923 analogue), failures introduced
// close to the center of the vectors. Expected shape: reconstruction is
// cheap, the overhead comes almost entirely from the redundant-copy
// communication (orange boxes close to blue boxes).
#include "bench_support.hpp"

int main(int argc, char** argv) {
  return rpcg::bench::run_figure(5, rpcg::repro::FailureLocation::kCenter, argc,
                                 argv, "Fig. 1");
}
