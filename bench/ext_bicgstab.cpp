// Extension bench (paper Sec. 1: ESR also applies to the preconditioned
// BiCGSTAB algorithm): redundancy overhead and recovery cost of the
// resilient BiCGSTAB solver, side by side with resilient PCG on the same
// matrix. BiCGSTAB performs two SpMVs per iteration, so it distributes two
// sets of redundant copies per iteration (of p̂ and ŝ).
#include <cstdio>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int matrix = static_cast<int>(o.get_int("matrix", 5));
  const std::vector<long> phis = o.get_int_list("phis", {1, 3, 8});

  const auto mat = repro::make_matrix(matrix, args.scale);
  repro::ExperimentRunner runner(mat.matrix, args.config());

  char title[160];
  std::snprintf(title, sizeof title,
                "BiCGSTAB extension on %s (vs resilient PCG, failures at "
                "center, 50%% progress)",
                mat.id.c_str());
  print_header(title, args);

  const auto bicg_run = [&](int phi, bool with_failures) {
    engine::SolverConfig c = runner.base_config();
    c.phi = phi;
    FailureSchedule schedule;
    if (with_failures && phi > 0) {
      // Reference iteration count of plain BiCGSTAB for placement
      // (noise-free, like the PCG placement run).
      auto& problem = runner.problem();
      problem.set_noise(0.0, 0);
      engine::SolverConfig ropts = c;
      ropts.phi = 0;
      const auto ref = engine::SolverRegistry::instance().create(
          "resilient-bicgstab", ropts);
      DistVector x0 = problem.make_x();
      const auto rres = ref->solve(problem, x0, {});
      schedule = FailureSchedule::contiguous(
          std::max(1, rres.iterations / 2),
          runner.first_rank(repro::FailureLocation::kCenter), phi);
    }
    return runner.run_solver("resilient-bicgstab", c, schedule, 17);
  };

  const auto ref = bicg_run(0, false);
  std::printf("plain BiCGSTAB: t0 = %.4f s, %d iterations "
              "(PCG reference: %d iterations)\n\n",
              ref.sim_time, ref.iterations, runner.reference_iterations());
  std::printf("%4s %14s %14s %14s %14s\n", "phi", "undist t[s]", "undist ov%",
              "fail t[s]", "recovery[s]");
  for (const long phi : phis) {
    const auto undist = bicg_run(static_cast<int>(phi), false);
    const auto fail = bicg_run(static_cast<int>(phi), true);
    std::printf("%4ld %14.4f %13.1f%% %14.4f %14.4f\n", phi, undist.sim_time,
                repro::overhead_pct(undist.sim_time, ref.sim_time),
                fail.sim_time,
                fail.sim_time_phase[static_cast<int>(Phase::kRecovery)]);
    std::fflush(stdout);
  }
  return 0;
}
