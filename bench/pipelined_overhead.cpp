// Blocking vs pipelined resilient PCG under identical multi-failure
// schedules, swept over the CommModel's message latency (Levonyak et al.,
// arXiv:1912.09230): as the interconnect becomes latency-dominated, the
// pipelined variant hides its one fused reduction behind the
// preconditioner + SpMV while the blocking variant pays two exposed
// reductions per iteration — the sweep makes the crossover visible. Per
// latency the table reports the median simulated time of both solvers and
// the pipelined run's posted/hidden/exposed reduction split.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  print_header(
      "Pipelined overhead: blocking vs pipelined resilient PCG vs "
      "interconnect latency (phi = psi = 2, failures at 20/60 %)",
      args);
  std::printf("%-4s %9s %-24s %12s %6s %12s %12s %12s %8s\n", "ID", "lambda",
              "solver", "med time[s]", "iters", "posted[s]", "hidden[s]",
              "exposed[s]", "hid%");

  const double base_latency = CommParams{}.latency_s;
  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    double crossover = -1.0;
    for (const double factor : {1.0, 10.0, 100.0, 1000.0}) {
      repro::ExperimentConfig cfg = args.config();
      cfg.comm.latency_s = base_latency * factor;
      repro::ExperimentRunner runner(mat.matrix, cfg);

      // The same two-event schedule for both solvers: psi = 2 contiguous
      // center ranks at 20 %, again at 60 % (the store re-arms in between).
      const NodeId first = runner.first_rank(repro::FailureLocation::kCenter);
      FailureSchedule schedule;
      for (const double progress : {0.2, 0.6}) {
        FailureEvent ev;
        ev.iteration = runner.failure_iteration(progress);
        ev.nodes = {first, first + 1};
        schedule.add(std::move(ev));
      }

      engine::SolverConfig scfg = runner.base_config();
      scfg.phi = 2;
      scfg.recovery = RecoveryMethod::kEsr;

      struct Run {
        const char* solver;
        Summary time;
        engine::SolveReport first_rep;
      };
      std::vector<Run> runs;
      for (const char* solver : {"resilient-pcg", "pipelined-resilient-pcg"}) {
        std::vector<double> times;
        engine::SolveReport first_rep;
        for (int r = 0; r < args.reps; ++r) {
          engine::SolveReport rep = runner.run_solver(
              solver, scfg, schedule, 400 + static_cast<std::uint64_t>(r));
          if (r == 0) first_rep = rep;
          times.push_back(rep.sim_time);
        }
        runs.push_back({solver, summarize(times), std::move(first_rep)});
      }

      for (const Run& run : runs) {
        const ReductionTimes& red = run.first_rep.reductions;
        std::printf("%-4s %9.2e %-24s %12.4e %6d %12.4e %12.4e %12.4e %7.1f%%\n",
                    mat.id.c_str(), cfg.comm.latency_s, run.solver,
                    run.time.median, run.first_rep.iterations, red.posted_s,
                    red.hidden_s, red.exposed_s,
                    red.posted_s > 0.0 ? 100.0 * red.hidden_s / red.posted_s
                                       : 0.0);
      }
      if (crossover < 0.0 && runs[1].time.median < runs[0].time.median)
        crossover = cfg.comm.latency_s;
      std::fflush(stdout);
    }
    if (crossover >= 0.0)
      std::printf("%s: pipelined wins from lambda >= %.2e s\n\n",
                  mat.id.c_str(), crossover);
    else
      std::printf("%s: blocking stays ahead over the swept range\n\n",
                  mat.id.c_str());
  }
  return 0;
}
