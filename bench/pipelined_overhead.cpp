// Blocking vs depth-l pipelined resilient CG/CR under identical multi-failure
// schedules, swept over the CommModel's message latency and the pipeline
// depth (Levonyak et al., arXiv:1912.09230): as the interconnect becomes
// latency-dominated, depth 1 hides its one fused reduction behind the
// preconditioner + SpMV, and every extra reduction in flight buys roughly one
// more full iteration of work to hide behind. The grid is
// depth (--depths, default 1,2,4) x latency multiplier {1, 10, 100, 1000};
// per point the table reports the median simulated time, iteration count, and
// the posted/hidden/exposed reduction split of both pipelined families next
// to the blocking baseline.
//
// With --metrics-out=FILE every grid point is emitted as JSON
// (rpcg-pipelined-overhead/v1), so run_all embeds the whole sweep in the
// BENCH_PR<N> snapshot and report_tools.py can table exposed-time
// trajectories across PRs.
//
// Self-gates (exit 1 on violation, like service_throughput):
//   * at the x100 latency point, every depth >= 2 must expose strictly less
//     reduction time than depth 1 of the same family (requires 1 in --depths;
//     skipped with a printed note when depth 1 already exposes nothing —
//     exposure cannot drop strictly below zero);
//   * every pipelined-resilient-cr point must converge under the two-event
//     schedule with exposed < posted (the CR family earns its keep).
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_support.hpp"
#include "util/json.hpp"

namespace {

struct Point {
  std::string matrix;
  double factor = 0.0;
  double latency_s = 0.0;
  std::string solver;
  int depth = 0;  // 0 = the blocking baseline
  double median_sim_time = 0.0;
  int iterations = 0;
  bool converged = false;
  double posted_s = 0.0;
  double hidden_s = 0.0;
  double exposed_s = 0.0;
  int max_in_flight = 0;
};

void print_point(const Point& p) {
  std::printf("%-4s %9.2e %-24s %5s %12.4e %6d %12.4e %12.4e %12.4e %7.1f%%\n",
              p.matrix.c_str(), p.latency_s, p.solver.c_str(),
              p.depth == 0 ? "-" : std::to_string(p.depth).c_str(),
              p.median_sim_time, p.iterations, p.posted_s, p.hidden_s,
              p.exposed_s,
              p.posted_s > 0.0 ? 100.0 * p.hidden_s / p.posted_s : 0.0);
}

std::string point_json(const Point& p) {
  using rpcg::format_compact;
  std::string out = "{\"matrix\": \"" + p.matrix + "\"";
  out += ", \"latency_factor\": " + format_compact(p.factor);
  out += ", \"latency_s\": " + format_compact(p.latency_s);
  out += ", \"solver\": \"" + p.solver + "\"";
  out += ", \"depth\": " + std::to_string(p.depth);
  out += ", \"median_sim_time\": " + format_compact(p.median_sim_time);
  out += ", \"iterations\": " + std::to_string(p.iterations);
  out += std::string(", \"converged\": ") + (p.converged ? "true" : "false");
  out += ", \"posted\": " + format_compact(p.posted_s);
  out += ", \"hidden\": " + format_compact(p.hidden_s);
  out += ", \"exposed\": " + format_compact(p.exposed_s);
  out += ", \"max_in_flight\": " + std::to_string(p.max_in_flight);
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const std::vector<long> depths = o.get_int_list("depths", {1, 2, 4});
  const std::string metrics_out = o.get_string("metrics-out", "");

  print_header(
      "Pipelined overhead: blocking vs depth-l pipelined CG/CR vs "
      "interconnect latency (phi = psi = 2, failures at 20/60 %)",
      args);
  std::printf("%-4s %9s %-24s %5s %12s %6s %12s %12s %12s %8s\n", "ID",
              "lambda", "solver", "depth", "med time[s]", "iters", "posted[s]",
              "hidden[s]", "exposed[s]", "hid%");

  const double base_latency = CommParams{}.latency_s;
  std::vector<Point> points;
  std::vector<std::string> gate_failures;

  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    double crossover = -1.0;
    for (const double factor : {1.0, 10.0, 100.0, 1000.0}) {
      repro::ExperimentConfig cfg = args.config();
      cfg.comm.latency_s = base_latency * factor;
      repro::ExperimentRunner runner(mat.matrix, cfg);

      // The same two-event schedule for every solver: psi = 2 contiguous
      // center ranks at 20 %, again at 60 % (the store re-arms in between).
      const NodeId first = runner.first_rank(repro::FailureLocation::kCenter);
      FailureSchedule schedule;
      for (const double progress : {0.2, 0.6}) {
        FailureEvent ev;
        ev.iteration = runner.failure_iteration(progress);
        ev.nodes = {first, first + 1};
        schedule.add(std::move(ev));
      }

      engine::SolverConfig scfg = runner.base_config();
      scfg.phi = 2;
      scfg.recovery = RecoveryMethod::kEsr;

      const auto run_point = [&](const std::string& solver, int depth) {
        engine::SolverConfig c = scfg;
        if (depth > 0) c.pipeline_depth = depth;
        std::vector<double> times;
        engine::SolveReport first_rep;
        for (int r = 0; r < args.reps; ++r) {
          engine::SolveReport rep = runner.run_solver(
              solver, c, schedule, 400 + static_cast<std::uint64_t>(r));
          if (r == 0) first_rep = rep;
          times.push_back(rep.sim_time);
        }
        Point p;
        p.matrix = mat.id;
        p.factor = factor;
        p.latency_s = cfg.comm.latency_s;
        p.solver = solver;
        p.depth = depth;
        p.median_sim_time = summarize(times).median;
        p.iterations = first_rep.iterations;
        p.converged = first_rep.converged;
        p.posted_s = first_rep.reductions.posted_s;
        p.hidden_s = first_rep.reductions.hidden_s;
        p.exposed_s = first_rep.reductions.exposed_s;
        p.max_in_flight = first_rep.reductions.max_in_flight;
        print_point(p);
        points.push_back(p);
        return p;
      };

      const Point blocking = run_point("resilient-pcg", 0);
      std::map<std::string, std::map<long, Point>> by_family;
      double best_pipelined = -1.0;
      for (const long depth : depths) {
        for (const char* family :
             {"pipelined-resilient-pcg", "pipelined-resilient-cr"}) {
          const Point p = run_point(family, static_cast<int>(depth));
          by_family[family][depth] = p;
          if (best_pipelined < 0.0 || p.median_sim_time < best_pipelined)
            best_pipelined = p.median_sim_time;
          if (p.solver == "pipelined-resilient-cr" &&
              (!p.converged || !(p.exposed_s < p.posted_s))) {
            gate_failures.push_back(
                p.matrix + " x" + format_compact(factor) + " depth " +
                std::to_string(p.depth) +
                ": pipelined-resilient-cr must converge with exposed < "
                "posted (converged=" + (p.converged ? "true" : "false") +
                ", exposed=" + format_compact(p.exposed_s) +
                ", posted=" + format_compact(p.posted_s) + ")");
          }
        }
      }
      // The depth gate, at the latency point where hiding matters most.
      if (factor == 100.0) {
        for (auto& [family, runs] : by_family) {
          const auto d1 = runs.find(1);
          if (d1 == runs.end()) continue;  // --depths without 1: nothing to gate
          if (!(d1->second.exposed_s > 0.0)) {
            // Depth 1 already hides every reduction on this problem (short
            // solves / compute-heavy iterations): exposure cannot drop
            // strictly below zero, so the comparison is vacuous — say so
            // rather than silently passing or spuriously failing.
            std::printf("gate note: %s x100 %s: depth 1 fully hidden, depth "
                        "comparison skipped\n",
                        mat.id.c_str(), family.c_str());
            continue;
          }
          for (const auto& [depth, p] : runs) {
            if (depth < 2) continue;
            if (!(p.exposed_s < d1->second.exposed_s)) {
              gate_failures.push_back(
                  p.matrix + " x100 " + family + ": depth " +
                  std::to_string(depth) + " exposed " +
                  format_compact(p.exposed_s) +
                  " not strictly below depth 1's " +
                  format_compact(d1->second.exposed_s));
            }
          }
        }
      }
      if (crossover < 0.0 && best_pipelined >= 0.0 &&
          best_pipelined < blocking.median_sim_time)
        crossover = cfg.comm.latency_s;
      std::fflush(stdout);
    }
    if (crossover >= 0.0)
      std::printf("%s: pipelining wins from lambda >= %.2e s\n\n",
                  mat.id.c_str(), crossover);
    else
      std::printf("%s: blocking stays ahead over the swept range\n\n",
                  mat.id.c_str());
  }

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pipelined_overhead: cannot write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::string depths_json;
    for (const long d : depths) {
      if (!depths_json.empty()) depths_json += ", ";
      depths_json += std::to_string(d);
    }
    std::fprintf(f,
                 "{\"schema\": \"rpcg-pipelined-overhead/v1\", "
                 "\"depths\": [%s], \"gate_failures\": %zu, \"points\": [",
                 depths_json.c_str(), gate_failures.size());
    for (std::size_t i = 0; i < points.size(); ++i)
      std::fprintf(f, "%s%s", i == 0 ? "" : ", ", point_json(points[i]).c_str());
    std::fprintf(f, "]}\n");
    std::fclose(f);
  }

  if (!gate_failures.empty()) {
    std::printf("SELF-GATE FAILED:\n");
    for (const std::string& g : gate_failures)
      std::printf("  %s\n", g.c_str());
    return 1;
  }
  std::printf("self-gate ok: depth >= 2 exposes strictly less than depth 1 "
              "at x100 latency; every CR point converged with exposed < "
              "posted\n");
  return 0;
}
