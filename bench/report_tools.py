#!/usr/bin/env python3
"""Readers and aggregators for rpcg JSON reports.

Two report dialects share a home here:

* ``rpcg-bench-report/v1`` — the per-PR perf snapshots run_all emits
  (BENCH_PR2.json, BENCH_PR3.json, ...). ``load_bench_report`` validates
  one, ``bench_map`` indexes it by bench name, and ``trajectory`` folds a
  sequence of snapshots into a per-bench wall-time table, so the perf
  trajectory of the repo is one command:

      python3 bench/report_tools.py BENCH_PR2.json BENCH_PR3.json ...

* ``rpcg-solve-report/v1`` — the per-solve records the engine emits.
  ``load_solve_report`` validates one (file or already-parsed dict),
  including the optional ``reduction_time`` overlap block of the pipelined
  solvers.

* ``rpcg-pipelined-overhead/v1`` — the depth x latency sweep the
  pipelined_overhead bench emits via --metrics-out (run_all embeds it as
  that bench's ``metrics`` field, so it rides inside the per-PR snapshot).
  ``load_pipelined_sweep`` validates one and ``format_sweep`` renders the
  exposed-reduction-time table, one row per (solver, depth), one column per
  latency point; the trajectory command prints it for the newest snapshot
  that carries one.

bench/check_regression.py builds its gate on these readers.
"""

import json
import sys

BENCH_SCHEMA = "rpcg-bench-report/v1"
SOLVE_SCHEMA = "rpcg-solve-report/v1"
PIPELINED_SCHEMA = "rpcg-pipelined-overhead/v1"


class ReportError(Exception):
    """A report failed to load or validate."""


def _load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise ReportError(f"cannot read {path}: {e}") from e


def load_bench_report(path):
    """Loads and validates one rpcg-bench-report/v1 snapshot."""
    report = _load_json(path)
    if report.get("schema") != BENCH_SCHEMA:
        raise ReportError(f"{path} is not an {BENCH_SCHEMA}")
    if not isinstance(report.get("benches"), list):
        raise ReportError(f"{path} has no benches array")
    return report


def load_solve_report(source):
    """Validates one rpcg-solve-report/v1 record.

    `source` is a path or an already-parsed dict (solve reports are usually
    embedded in other documents rather than stored standalone).
    """
    report = source if isinstance(source, dict) else _load_json(source)
    if report.get("schema") != SOLVE_SCHEMA:
        raise ReportError(f"solve report has schema "
                          f"{report.get('schema')!r}, expected {SOLVE_SCHEMA}")
    reductions = report.get("reduction_time")
    if reductions is not None:
        for key in ("posted", "hidden", "exposed", "count"):
            if key not in reductions:
                raise ReportError(f"reduction_time block lacks '{key}'")
    return report


def load_pipelined_sweep(source):
    """Validates one rpcg-pipelined-overhead/v1 sweep (path or parsed dict,
    the latter for sweeps embedded as a bench record's ``metrics``)."""
    sweep = source if isinstance(source, dict) else _load_json(source)
    if sweep.get("schema") != PIPELINED_SCHEMA:
        raise ReportError(f"sweep has schema {sweep.get('schema')!r}, "
                          f"expected {PIPELINED_SCHEMA}")
    points = sweep.get("points")
    if not isinstance(points, list):
        raise ReportError("pipelined sweep has no points array")
    for p in points:
        for key in ("matrix", "latency_s", "solver", "depth", "iterations",
                    "converged", "posted", "hidden", "exposed"):
            if key not in p:
                raise ReportError(f"sweep point lacks '{key}': {p}")
    return sweep


def format_sweep(sweep):
    """Renders one pipelined sweep as an exposed-seconds table: one row per
    (matrix, solver, depth), one column per swept latency. A '!' marks
    points that did not converge."""
    latencies = sorted({p["latency_s"] for p in sweep["points"]})
    rows = {}  # (matrix, solver, depth) -> {latency: point}
    for p in sweep["points"]:
        rows.setdefault((p["matrix"], p["solver"], p["depth"]), {})[
            p["latency_s"]] = p
    name_w = max(len(f"{m} {s} d{d}") for (m, s, d) in rows)
    out = [f"{'exposed[s]':<{name_w}} " +
           " ".join(f"{lam:>11.2e}" for lam in latencies)]
    for (matrix, solver, depth), by_lam in sorted(rows.items()):
        cells = []
        for lam in latencies:
            p = by_lam.get(lam)
            if p is None:
                cells.append(f"{'-':>11}")
            else:
                mark = " " if p["converged"] else "!"
                cells.append(f"{p['exposed']:>10.3e}{mark}")
        label = f"{matrix} {solver} d{depth}"
        out.append(f"{label:<{name_w}} " + " ".join(cells))
    return "\n".join(out)


def bench_map(report):
    """{bench name: bench record} for one snapshot."""
    return {b["name"]: b for b in report["benches"]}


def bench_wall_seconds(bench):
    """Wall seconds of one bench record, or None when the run is unusable
    as a data point (non-zero exit, e.g. 127 from a missing binary, or a
    zero/negative time)."""
    if bench.get("exit_code", -1) != 0:
        return None
    wall = bench.get("wall_seconds", 0.0)
    return wall if wall > 0.0 else None


def trajectory(reports):
    """Folds snapshots (oldest first) into {bench: [wall-or-None, ...]}.

    Every bench that appears in any snapshot gets a row; positions where it
    was absent or failed hold None, so suite growth and dropped benches stay
    visible across the whole trajectory.
    """
    names = []
    seen = set()
    for report in reports:
        for b in report["benches"]:
            if b["name"] not in seen:
                seen.add(b["name"])
                names.append(b["name"])
    maps = [bench_map(report) for report in reports]
    rows = {}
    for name in names:
        row = []
        for benches in maps:
            bench = benches.get(name)
            row.append(None if bench is None else bench_wall_seconds(bench))
        rows[name] = row
    return rows


def format_trajectory(labels, rows, totals=None):
    """Renders the trajectory table: one row per bench, one column per
    snapshot, '-' for missing/failed entries, and the relative change of
    the last column against the first present value."""
    name_w = max([len(n) for n in rows] + [len("bench")])
    out = [f"{'bench':<{name_w}} " +
           " ".join(f"{label:>10}" for label in labels) + f" {'change':>8}"]
    for name, row in rows.items():
        cells = " ".join("         -" if v is None else f"{v:10.2f}"
                         for v in row)
        present = [v for v in row if v is not None]
        change = ("        -" if len(present) < 2 or present[0] <= 0.0
                  else f"{100.0 * (present[-1] - present[0]) / present[0]:+7.1f}%")
        out.append(f"{name:<{name_w}} {cells} {change}")
    if totals is not None:
        cells = " ".join("         -" if v is None else f"{v:10.2f}"
                         for v in totals)
        out.append(f"{'total':<{name_w}} {cells}")
    return "\n".join(out)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    paths = argv[1:]
    try:
        reports = [load_bench_report(p) for p in paths]
    except ReportError as e:
        print(f"report_tools: {e}", file=sys.stderr)
        return 2
    labels = [p.rsplit("/", 1)[-1].removesuffix(".json") for p in paths]
    totals = [r.get("total_wall_seconds") for r in reports]
    print(format_trajectory(labels, trajectory(reports), totals))
    # The newest snapshot carrying a pipelined depth x latency sweep gets
    # its exposed-time table appended (the sweep rides as an embedded
    # metrics document, so old snapshots without it stay readable).
    for report, label in zip(reversed(reports), reversed(labels)):
        for bench in report["benches"]:
            metrics = bench.get("metrics")
            if isinstance(metrics, dict) and \
                    metrics.get("schema") == PIPELINED_SCHEMA:
                try:
                    sweep = load_pipelined_sweep(metrics)
                except ReportError as e:
                    print(f"report_tools: {label}: {e}", file=sys.stderr)
                    return 2
                print(f"\npipelined latency sweep ({label}):")
                print(format_sweep(sweep))
                return 0
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
