// Extension bench (paper Sec. 1: the ESR modifications also apply to the
// Jacobi, Gauss-Seidel, SOR and SSOR solvers): failure-free redundancy
// overhead and recovery cost of the resilient stationary solvers, run
// through the engine registry ("stationary" with a per-method config).
#include <cstdio>
#include <utility>

#include "bench_support.hpp"
#include "solver/stationary.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int phi = static_cast<int>(o.get_int("phi", 3));
  const int matrix = static_cast<int>(o.get_int("matrix", 4));

  auto mat = repro::make_matrix(matrix, args.scale);
  engine::Problem problem = engine::ProblemBuilder()
                                .matrix(std::move(mat.matrix))
                                .nodes(args.nodes)
                                .preconditioner("none")
                                .build();  // b = A * ones, noise off

  char title[160];
  std::snprintf(title, sizeof title,
                "Stationary-solver extension on %s (phi = %d, rtol 1e-6)",
                mat.id.c_str(), phi);
  print_header(title, args);
  std::printf("%-14s %8s %12s %12s %14s %12s\n", "method", "iters",
              "t_plain[s]", "t_phi[s]", "undist ov%", "t_fail[s]");

  auto& registry = engine::SolverRegistry::instance();
  for (const StationaryMethod method :
       {StationaryMethod::kJacobi, StationaryMethod::kGaussSeidel,
        StationaryMethod::kSor, StationaryMethod::kSsor}) {
    engine::SolverConfig c;
    c.stationary_method = method;
    c.omega = method == StationaryMethod::kJacobi ? 0.8 : 1.3;
    if (method == StationaryMethod::kGaussSeidel) c.omega = 1.0;
    c.rtol = 1e-6;
    c.max_iterations = 200000;

    DistVector x1 = problem.make_x();
    const auto r1 = registry.create("stationary", c)->solve(problem, x1, {});
    if (!r1.converged) {
      std::printf("%-14s did not converge within %d iterations; skipped\n",
                  to_string(method).c_str(), c.max_iterations);
      continue;
    }

    c.phi = phi;
    DistVector x2 = problem.make_x();
    const auto r2 = registry.create("stationary", c)->solve(problem, x2, {});

    DistVector x3 = problem.make_x();
    const auto r3 = registry.create("stationary", c)
                        ->solve(problem, x3,
                                FailureSchedule::contiguous(r1.iterations / 2,
                                                            0, phi));

    std::printf("%-14s %8d %12.5f %12.5f %13.1f%% %12.5f\n",
                to_string(method).c_str(), r1.iterations, r1.sim_time,
                r2.sim_time, repro::overhead_pct(r2.sim_time, r1.sim_time),
                r3.sim_time);
    std::fflush(stdout);
  }
  return 0;
}
