// Extension bench (paper Sec. 1: the ESR modifications also apply to the
// Jacobi, Gauss-Seidel, SOR and SSOR solvers): failure-free redundancy
// overhead and recovery cost of the resilient stationary solvers.
#include <cstdio>

#include "bench_common.hpp"
#include "solver/stationary.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int phi = static_cast<int>(o.get_int("phi", 3));
  const int matrix = static_cast<int>(o.get_int("matrix", 4));

  const auto mat = repro::make_matrix(matrix, args.scale);
  const Partition part = Partition::block_rows(mat.matrix.rows(), args.nodes);
  const DistMatrix dist = DistMatrix::distribute(mat.matrix, part);
  DistVector b(part);
  {
    std::vector<double> ones(static_cast<std::size_t>(mat.matrix.rows()), 1.0);
    std::vector<double> bg(static_cast<std::size_t>(mat.matrix.rows()));
    mat.matrix.spmv(ones, bg);
    b.set_global(bg);
  }

  char title[160];
  std::snprintf(title, sizeof title,
                "Stationary-solver extension on %s (phi = %d, rtol 1e-6)",
                mat.id.c_str(), phi);
  print_header(title, args);
  std::printf("%-14s %8s %12s %12s %14s %12s\n", "method", "iters",
              "t_plain[s]", "t_phi[s]", "undist ov%", "t_fail[s]");

  for (const StationaryMethod method :
       {StationaryMethod::kJacobi, StationaryMethod::kGaussSeidel,
        StationaryMethod::kSor, StationaryMethod::kSsor}) {
    StationaryOptions sopts;
    sopts.method = method;
    sopts.omega = method == StationaryMethod::kJacobi ? 0.8 : 1.3;
    if (method == StationaryMethod::kGaussSeidel) sopts.omega = 1.0;
    sopts.rtol = 1e-6;
    sopts.max_iterations = 200000;

    Cluster c1(part, CommParams{});
    ResilientStationary plain(c1, mat.matrix, dist, sopts);
    DistVector x1(part);
    const auto r1 = plain.solve(b, x1, {});
    if (!r1.converged) {
      std::printf("%-14s did not converge within %d iterations; skipped\n",
                  to_string(method).c_str(), sopts.max_iterations);
      continue;
    }

    sopts.phi = phi;
    Cluster c2(part, CommParams{});
    ResilientStationary resilient(c2, mat.matrix, dist, sopts);
    DistVector x2(part);
    const auto r2 = resilient.solve(b, x2, {});

    Cluster c3(part, CommParams{});
    ResilientStationary failing(c3, mat.matrix, dist, sopts);
    DistVector x3(part);
    const auto r3 = failing.solve(
        b, x3, FailureSchedule::contiguous(r1.iterations / 2, 0, phi));

    std::printf("%-14s %8d %12.5f %12.5f %13.1f%% %12.5f\n",
                to_string(method).c_str(), r1.iterations, r1.sim_time,
                r2.sim_time, repro::overhead_pct(r2.sim_time, r1.sim_time),
                r3.sim_time);
    std::fflush(stdout);
  }
  return 0;
}
