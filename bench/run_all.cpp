// Driver that executes the table/fig/ablation bench executables and emits a
// machine-readable JSON perf report, so per-PR perf trajectories can be
// accumulated from one command:
//
//   ./run_all [--out report.json] [--bin-dir DIR] [--only table1_matrices,...]
//             [--scale S] [--nodes N] [--reps R] [--keep-output]
//
// Each bench runs as a child process with the shared --scale/--nodes/--reps
// flags (see bench_support.hpp); the report records the command line, exit
// code, and wall-clock seconds per bench. Output of the children is
// suppressed unless --keep-output is given.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/options.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#endif

// Comma-separated default bench list, injected at configure time from the
// RPCG_BENCHES target list in bench/CMakeLists.txt (single source of truth).
#ifndef RPCG_BENCH_LIST
#define RPCG_BENCH_LIST ""
#endif

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : csv + ",") {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return out;
}

struct BenchResult {
  std::string name;
  std::string command;
  int exit_code = -1;
  double wall_seconds = 0.0;
};

// Forwarded flag values are pasted into a shell command line; restrict them
// to the numeric-list shapes the benches accept rather than escaping shell
// metacharacters.
bool safe_flag_value(const std::string& s) {
  for (const char c : s)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == ',' || c == '-' || c == '_'))
      return false;
  return !s.empty();
}

int run_command(const std::string& cmd) {
  const int raw = std::system(cmd.c_str());
#ifndef _WIN32
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  return -1;
#else
  return raw;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const rpcg::Options opts(argc, argv);

  const std::string default_bin_dir =
      std::filesystem::path(argv[0]).parent_path().string();
  const std::string bin_dir =
      opts.get_string("bin-dir", default_bin_dir.empty() ? "." : default_bin_dir);
  const std::string out_path = opts.get_string("out", "bench_report.json");
  const bool keep_output = opts.get_bool("keep-output", false);
  const double scale = opts.get_double("scale", 32.0);
  const long nodes = opts.get_int("nodes", 64);
  const long reps = opts.get_int("reps", 1);
  // The remaining shared bench flags (see bench_support.hpp) are forwarded
  // verbatim when given, so the recorded commands match the request.
  std::string passthrough;
  for (const char* flag : {"noise", "matrices", "precond", "strategy"}) {
    if (!opts.has(flag)) continue;
    const std::string value = opts.get_string(flag, "");
    if (!safe_flag_value(value)) {
      std::fprintf(stderr, "run_all: invalid --%s value '%s'\n", flag,
                   value.c_str());
      return 1;
    }
    passthrough += std::string(" --") + flag + "=" + value;
  }

  const std::string only = opts.get_string("only", "");
  const std::vector<std::string> selected =
      split_names(only.empty() ? RPCG_BENCH_LIST : only);
  if (selected.empty()) {
    std::fprintf(stderr, "run_all: no benches selected\n");
    return 1;
  }

  // Opened before the suite runs so an unwritable path fails fast instead of
  // discarding minutes of bench results at the end.
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "run_all: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }

  std::vector<BenchResult> results;
  int failures = 0;
  const auto suite_start = Clock::now();
  for (const std::string& name : selected) {
#ifdef _WIN32
    const std::string exe_name = name + ".exe";
#else
    const std::string& exe_name = name;
#endif
    const std::string exe =
        (std::filesystem::path(bin_dir) / exe_name).string();
    BenchResult r;
    r.name = name;
    // Quoted so bin dirs containing spaces survive the shell's word split.
    r.command = "\"" + exe + "\" --scale=" + std::to_string(scale) +
                " --nodes=" + std::to_string(nodes) +
                " --reps=" + std::to_string(reps) + passthrough;
    if (!std::filesystem::exists(exe)) {
      std::fprintf(stderr,
                   "run_all: %s FAILED (binary not found at %s — typo in "
                   "--only, or target missing from bench/CMakeLists.txt?)\n",
                   name.c_str(), exe.c_str());
      r.exit_code = 127;
      ++failures;
      results.push_back(std::move(r));
      continue;
    }
#ifdef _WIN32
    const char* null_device = "NUL";
#else
    const char* null_device = "/dev/null";
#endif
    const std::string cmd =
        keep_output ? r.command
                    : r.command + " > " + null_device + " 2>&1";
    std::fprintf(stderr, "run_all: %s ...", name.c_str());
    std::fflush(stderr);
    const auto start = Clock::now();
    r.exit_code = run_command(cmd);
    r.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    std::fprintf(stderr, " %s (%.2fs)\n", r.exit_code == 0 ? "ok" : "FAILED",
                 r.wall_seconds);
    if (r.exit_code != 0) ++failures;
    results.push_back(std::move(r));
  }
  const double total_seconds =
      std::chrono::duration<double>(Clock::now() - suite_start).count();

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"rpcg-bench-report/v1\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"nodes\": %ld,\n", nodes);
  std::fprintf(f, "  \"reps\": %ld,\n", reps);
  std::fprintf(f, "  \"total_wall_seconds\": %.6f,\n", total_seconds);
  std::fprintf(f, "  \"failures\": %d,\n", failures);
  std::fprintf(f, "  \"benches\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"command\": \"%s\", "
                 "\"exit_code\": %d, \"wall_seconds\": %.6f}%s\n",
                 rpcg::json_escape(r.name).c_str(), rpcg::json_escape(r.command).c_str(),
                 r.exit_code, r.wall_seconds,
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::fprintf(stderr, "run_all: %zu benches, %d failure(s), %.2fs; report: %s\n",
               results.size(), failures, total_seconds, out_path.c_str());
  return failures == 0 ? 0 : 1;
}
