// Driver that executes the table/fig/ablation bench executables and emits a
// machine-readable JSON perf report, so per-PR perf trajectories can be
// accumulated from one command:
//
//   ./run_all [--out report.json] [--bin-dir DIR] [--only table1_matrices,...]
//             [--scale S] [--nodes N] [--reps R] [--jobs J] [--keep-output]
//
// Each bench runs as a child process with the shared --scale/--nodes/--reps
// flags (see bench_support.hpp); the report records the command line, exit
// code, and wall-clock seconds per bench. Output of the children is
// suppressed unless --keep-output is given. With --jobs J > 1 the
// independent bench processes fan out over a worker pool (results are
// collected in suite order regardless, so the report is deterministic; the
// per-bench wall times of concurrent runs contend for the same cores).
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#endif

// Comma-separated default bench list, injected at configure time from the
// RPCG_BENCHES target list in bench/CMakeLists.txt (single source of truth).
#ifndef RPCG_BENCH_LIST
#define RPCG_BENCH_LIST ""
#endif

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : csv + ",") {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return out;
}

struct BenchResult {
  std::string name;
  std::string command;
  std::string metrics_path;
  std::string metrics;  // raw JSON object emitted by the bench, if any
  int exit_code = -1;
  double wall_seconds = 0.0;
};

// Benches that support it write a compact JSON metrics object to
// --metrics-out (e.g. service_throughput's jobs/s and factorization
// counts); the others simply ignore the flag. A well-formed file is
// embedded verbatim as the bench's "metrics" field.
std::string read_metrics_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string s = buf.str();
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.pop_back();
  // Embedded raw into the report, so only a JSON object is acceptable.
  if (s.empty() || s.front() != '{' || s.back() != '}') return "";
  return s;
}

// Forwarded flag values are pasted into a shell command line; restrict them
// to the numeric-list shapes the benches accept rather than escaping shell
// metacharacters.
bool safe_flag_value(const std::string& s) {
  for (const char c : s)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == ',' || c == '-' || c == '_'))
      return false;
  return !s.empty();
}

int run_command(const std::string& cmd) {
  const int raw = std::system(cmd.c_str());
#ifndef _WIN32
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  return -1;
#else
  return raw;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const rpcg::Options opts(argc, argv);

  const std::string default_bin_dir =
      std::filesystem::path(argv[0]).parent_path().string();
  const std::string bin_dir =
      opts.get_string("bin-dir", default_bin_dir.empty() ? "." : default_bin_dir);
  const std::string out_path = opts.get_string("out", "bench_report.json");
  const bool keep_output = opts.get_bool("keep-output", false);
  const double scale = opts.get_double("scale", 32.0);
  const long nodes = opts.get_int("nodes", 64);
  const long reps = opts.get_int("reps", 1);
  const int jobs = static_cast<int>(opts.get_int("jobs", 1));
  if (jobs < 1) {
    std::fprintf(stderr, "run_all: --jobs must be >= 1\n");
    return 1;
  }
  // The remaining shared bench flags (see bench_support.hpp) are forwarded
  // verbatim when given, so the recorded commands match the request.
  std::string passthrough;
  for (const char* flag :
       {"noise", "matrices", "precond", "strategy", "exec", "workers",
        "depths"}) {
    if (!opts.has(flag)) continue;
    const std::string value = opts.get_string(flag, "");
    if (!safe_flag_value(value)) {
      std::fprintf(stderr, "run_all: invalid --%s value '%s'\n", flag,
                   value.c_str());
      return 1;
    }
    passthrough += std::string(" --") + flag + "=" + value;
  }

  const std::string only = opts.get_string("only", "");
  const std::vector<std::string> selected =
      split_names(only.empty() ? RPCG_BENCH_LIST : only);
  if (selected.empty()) {
    std::fprintf(stderr, "run_all: no benches selected\n");
    return 1;
  }

  // Opened before the suite runs so an unwritable path fails fast instead of
  // discarding minutes of bench results at the end.
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "run_all: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }

  // Pre-resolve every bench into its result slot so parallel execution can
  // fill the vector by index: the report order is the suite order no matter
  // how the child processes interleave.
  std::vector<BenchResult> results(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::string& name = selected[i];
#ifdef _WIN32
    const std::string exe_name = name + ".exe";
#else
    const std::string& exe_name = name;
#endif
    const std::string exe =
        (std::filesystem::path(bin_dir) / exe_name).string();
    BenchResult& r = results[i];
    r.name = name;
    r.metrics_path =
        (std::filesystem::path(out_path).parent_path() / (name + ".metrics.json"))
            .string();
    // Quoted so bin dirs containing spaces survive the shell's word split.
    r.command = "\"" + exe + "\" --scale=" + rpcg::format_compact(scale) +
                " --nodes=" + std::to_string(nodes) +
                " --reps=" + std::to_string(reps) + passthrough +
                " --metrics-out=\"" + r.metrics_path + "\"";
    if (!std::filesystem::exists(exe)) {
      std::fprintf(stderr,
                   "run_all: %s FAILED (binary not found at %s — typo in "
                   "--only, or target missing from bench/CMakeLists.txt?)\n",
                   name.c_str(), exe.c_str());
      r.exit_code = 127;
    }
  }

  const auto run_one = [&](std::size_t i) {
    BenchResult& r = results[i];
    if (r.exit_code == 127) return;  // binary missing, reported above
#ifdef _WIN32
    const char* null_device = "NUL";
#else
    const char* null_device = "/dev/null";
#endif
    const std::string cmd =
        keep_output ? r.command
                    : r.command + " > " + null_device + " 2>&1";
    std::fprintf(stderr, "run_all: %s ...\n", r.name.c_str());
    // A stale metrics file from an earlier run must not masquerade as this
    // run's numbers.
    std::error_code ec;
    std::filesystem::remove(r.metrics_path, ec);
    const auto start = Clock::now();
    r.exit_code = run_command(cmd);
    r.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    r.metrics = read_metrics_file(r.metrics_path);
    std::filesystem::remove(r.metrics_path, ec);
    std::fprintf(stderr, "run_all: %s %s (%.2fs)\n", r.name.c_str(),
                 r.exit_code == 0 ? "ok" : "FAILED", r.wall_seconds);
  };

  const auto suite_start = Clock::now();
  if (jobs == 1) {
    for (std::size_t i = 0; i < results.size(); ++i) run_one(i);
  } else {
    // Independent bench processes fan out over a private pool of exactly
    // `jobs` workers (the workers block in system(), so the shared compute
    // pool and its size cap are the wrong tool). Benches are claimed
    // dynamically — one long bench (table2 at scale 8) must not serialize
    // behind a statically co-chunked neighbor.
    rpcg::ThreadPool pool(jobs);
    std::atomic<std::size_t> next{0};
    pool.run_chunked(results.size(), jobs,
                     [&run_one, &next, &results](std::size_t, std::size_t) {
                       for (std::size_t i;
                            (i = next.fetch_add(1)) < results.size();)
                         run_one(i);
                     });
  }
  int failures = 0;
  for (const BenchResult& r : results)
    if (r.exit_code != 0) ++failures;
  const double total_seconds =
      std::chrono::duration<double>(Clock::now() - suite_start).count();

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"rpcg-bench-report/v1\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"nodes\": %ld,\n", nodes);
  std::fprintf(f, "  \"reps\": %ld,\n", reps);
  std::fprintf(f, "  \"total_wall_seconds\": %.6f,\n", total_seconds);
  std::fprintf(f, "  \"failures\": %d,\n", failures);
  std::fprintf(f, "  \"benches\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::string metrics_field;
    if (!r.metrics.empty()) {
      metrics_field = ", \"metrics\": ";
      metrics_field += r.metrics;
    }
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"command\": \"%s\", "
                 "\"exit_code\": %d, \"wall_seconds\": %.6f%s}%s\n",
                 rpcg::json_escape(r.name).c_str(), rpcg::json_escape(r.command).c_str(),
                 r.exit_code, r.wall_seconds, metrics_field.c_str(),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::fprintf(stderr, "run_all: %zu benches, %d failure(s), %.2fs; report: %s\n",
               results.size(), failures, total_seconds, out_path.c_str());
  return failures == 0 ? 0 : 1;
}
