// SolverService throughput: the cross-job SharedFactorizationCache vs the
// status quo of one isolated Problem per solve.
//
// The batch is deliberately factorization-heavy — failure-laden resilient
// jobs repeated over the same matrices — because that is the workload the
// shared cache exists for: today every Problem refactorizes its recovery
// operators from scratch, while the service builds each (matrix, ordering,
// failed-set) factorization once and serves every later job from memory.
//
// Three configurations are timed over the identical batch:
//   serial    workers=1, shared cache off   (status-quo baseline)
//   batched   --service-workers, cache on   (the service as shipped)
//   nocache   --service-workers, cache off  (isolates the cache's share)
//
// The bench self-gates: batched must beat serial on jobs/s AND build
// strictly fewer factorizations than nocache, else the exit code is 1.
// With --metrics-out=FILE the numbers are written as compact JSON for
// run_all to embed in the perf report.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "service/job.hpp"
#include "service/solver_service.hpp"
#include "util/json.hpp"

namespace {

using rpcg::bench::CommonArgs;
using rpcg::service::JobSpec;
using rpcg::service::ServiceOptions;
using rpcg::service::ServiceReport;
using rpcg::service::SolverService;

/// The failure-heavy job mix: per matrix, `copies` repetitions of two
/// resilient templates that share one failed-node set, so the cache key
/// (matrix, ordering, failed set) repeats 2 * copies times per matrix.
std::vector<JobSpec> make_batch(const CommonArgs& args, int copies) {
  std::vector<JobSpec> jobs;
  const struct {
    const char* solver;
    int iteration;
  } templates[] = {{"resilient-pcg", 3}, {"pipelined-resilient-pcg", 5}};
  for (const long m : args.matrices) {
    for (int c = 0; c < copies; ++c) {
      for (const auto& t : templates) {
        JobSpec job;
        job.name = "M";
        job.name += std::to_string(m);
        job.name += '-';
        job.name += t.solver;
        job.name += "-c";
        job.name += std::to_string(c);
        job.matrix = static_cast<int>(m);
        // Clamp the divisor: below ~1/12 of paper size the LDLT kernel gets
        // too cheap to measure against 1-core scheduling noise, and the
        // jobs/s self-gate would flake on workloads the cache was never
        // meant to speed up. The suite-wide --scale still applies whenever
        // it asks for the same or bigger problems.
        job.scale = std::min(args.scale, 12.0);
        job.nodes = args.nodes;
        job.solver = t.solver;
        job.precond = args.precond;
        job.config.rtol = 1e-6;
        job.config.recovery = rpcg::RecoveryMethod::kEsr;
        job.config.phi = 8;
        job.config.strategy = args.strategy;
        // Exact LDLT recovery: the expensive, cacheable kernel this bench
        // exists to amortize. Jobs stay sequential inside — on the service
        // the parallelism dimension is across jobs, not within one.
        job.config.esr.exact_local_solve = true;
        // Three eight-node waves at distinct locations: every copy of the
        // template redoes all three factorizations when each Problem is
        // isolated, while the shared cache builds each (matrix, failed-set)
        // block exactly once per batch.
        for (const auto& [iter, first] : {std::pair<int, int>{t.iteration, 1},
                                          {t.iteration + 7, 17},
                                          {t.iteration + 14, 33}}) {
          rpcg::FailureSchedule wave =
              rpcg::FailureSchedule::contiguous(iter, first, 8);
          job.schedule.add(wave.events().front());
        }
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

struct RunStats {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  std::uint64_t factorizations = 0;
  std::size_t failed = 0;
};

RunStats run_config(const std::vector<JobSpec>& jobs, int workers,
                    bool shared_cache) {
  ServiceOptions opts;
  opts.workers = workers;
  opts.shared_cache = shared_cache;
  const ServiceReport report = SolverService(opts).run(jobs);
  RunStats s;
  s.wall_seconds = report.wall_seconds;
  s.jobs_per_second = report.jobs_per_second;
  s.factorizations = report.total_factorizations;
  s.failed = report.failed;
  return s;
}

void print_stats(const char* label, const RunStats& s) {
  std::printf("%-26s wall=%9.4fs  jobs/s=%8.2f  factorizations=%llu%s\n",
              label, s.wall_seconds, s.jobs_per_second,
              static_cast<unsigned long long>(s.factorizations),
              s.failed == 0 ? "" : "  FAILED JOBS");
}

std::string stats_json(const RunStats& s) {
  std::string out = "{\"wall_seconds\": ";
  out += rpcg::format_compact(s.wall_seconds);
  out += ", \"jobs_per_second\": ";
  out += rpcg::format_compact(s.jobs_per_second);
  out += ", \"factorizations\": ";
  out += std::to_string(s.factorizations);
  out += '}';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const rpcg::Options o(argc, argv);
  const int copies = static_cast<int>(o.get_int("copies", 3));
  const int service_workers =
      static_cast<int>(o.get_int("service-workers", 8));
  const std::string metrics_out = o.get_string("metrics-out", "");

  const std::vector<JobSpec> jobs = make_batch(args, copies);
  print_header("SolverService throughput: shared factorization cache vs "
               "per-Problem isolation",
               args);
  std::printf("batch: %zu failure-heavy jobs over %zu matrices, "
              "service workers = %d\n\n",
              jobs.size(), args.matrices.size(), service_workers);

  const RunStats serial = run_config(jobs, 1, false);
  print_stats("serial (1 worker, no cache)", serial);
  const RunStats batched = run_config(jobs, service_workers, true);
  print_stats("batched (shared cache)", batched);
  const RunStats nocache = run_config(jobs, service_workers, false);
  print_stats("batched (cache off)", nocache);

  const double speedup = serial.wall_seconds > 0.0
                             ? serial.wall_seconds / batched.wall_seconds
                             : 0.0;
  const std::uint64_t saved =
      nocache.factorizations > batched.factorizations
          ? nocache.factorizations - batched.factorizations
          : 0;
  std::printf("\nbatched vs serial speedup: %.2fx; factorizations saved by "
              "shared cache: %llu (%llu -> %llu)\n",
              speedup, static_cast<unsigned long long>(saved),
              static_cast<unsigned long long>(nocache.factorizations),
              static_cast<unsigned long long>(batched.factorizations));

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "service_throughput: cannot write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"schema\": \"rpcg-service-throughput/v1\", "
                 "\"jobs\": %zu, \"service_workers\": %d, "
                 "\"serial\": %s, \"batched\": %s, \"batched_nocache\": %s, "
                 "\"speedup\": %s, \"factorizations_saved\": %llu}\n",
                 jobs.size(), service_workers, stats_json(serial).c_str(),
                 stats_json(batched).c_str(), stats_json(nocache).c_str(),
                 rpcg::format_compact(speedup).c_str(),
                 static_cast<unsigned long long>(saved));
    std::fclose(f);
  }

  // Self-gate: the service must pay for itself on this workload.
  int failures = 0;
  if (serial.failed + batched.failed + nocache.failed > 0) {
    std::fprintf(stderr, "service_throughput: FAILED — jobs errored\n");
    ++failures;
  }
  if (batched.jobs_per_second <= serial.jobs_per_second) {
    std::fprintf(stderr,
                 "service_throughput: FAILED — batched (%.2f jobs/s) did not "
                 "beat serial (%.2f jobs/s)\n",
                 batched.jobs_per_second, serial.jobs_per_second);
    ++failures;
  }
  if (batched.factorizations >= nocache.factorizations) {
    std::fprintf(stderr,
                 "service_throughput: FAILED — shared cache built %llu "
                 "factorizations, cache-off built %llu\n",
                 static_cast<unsigned long long>(batched.factorizations),
                 static_cast<unsigned long long>(nocache.factorizations));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
