#!/usr/bin/env python3
"""Perf-trajectory regression gate for rpcg-bench-report/v1 snapshots.

Compares two run_all reports (e.g. the committed BENCH_PR<N-1>.json baseline
against the candidate BENCH_PR<N>.json) and fails when any bench present in
BOTH reports regressed by more than --max-regression percent in wall time.
Benches that appear in only one report are listed but never fail the gate
(the suite is allowed to grow), and failed benches (exit_code != 0) in the
candidate always fail it.

Usage:
  bench/check_regression.py BASELINE.json CANDIDATE.json [--max-regression 15]

Exit code 0 = gate passed, 1 = regression or failed bench, 2 = bad input.
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != "rpcg-bench-report/v1":
        print(f"check_regression: {path} is not an rpcg-bench-report/v1",
              file=sys.stderr)
        sys.exit(2)
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-regression", type=float, default=15.0,
                        help="max allowed wall-time regression in percent "
                             "(default: 15)")
    args = parser.parse_args()

    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)
    base = {b["name"]: b for b in baseline["benches"]}
    cand = {b["name"]: b for b in candidate["benches"]}

    failures = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"  NEW      {name}: {cand[name]['wall_seconds']:.2f}s "
                  "(no baseline, not gated)")
            continue
        if name not in cand:
            print(f"  DROPPED  {name} (baseline only, not gated)")
            continue
        b, c = base[name], cand[name]
        if c["exit_code"] != 0:
            failures.append(f"{name} failed (exit code {c['exit_code']})")
            print(f"  FAILED   {name}: exit code {c['exit_code']}")
            continue
        if b["exit_code"] != 0 or b["wall_seconds"] <= 0.0:
            # A failed/zero-time baseline entry is no baseline at all (e.g.
            # exit 127 from a missing binary); report it, don't divide by it.
            print(f"  NOBASE   {name}: baseline invalid (exit "
                  f"{b['exit_code']}, {b['wall_seconds']:.2f}s); not gated")
            continue
        delta = 100.0 * (c["wall_seconds"] - b["wall_seconds"]) / b["wall_seconds"]
        verdict = "REGRESSED" if delta > args.max_regression else "ok"
        print(f"  {verdict:8s} {name}: {b['wall_seconds']:.2f}s -> "
              f"{c['wall_seconds']:.2f}s ({delta:+.1f}%)")
        if delta > args.max_regression:
            failures.append(f"{name} regressed {delta:+.1f}% "
                            f"(limit {args.max_regression:.0f}%)")

    total_b = baseline.get("total_wall_seconds", 0.0)
    total_c = candidate.get("total_wall_seconds", 0.0)
    if total_b > 0:
        print(f"  total: {total_b:.2f}s -> {total_c:.2f}s "
              f"({100.0 * (total_c - total_b) / total_b:+.1f}%)")

    if failures:
        print("check_regression: GATE FAILED", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("check_regression: gate passed "
          f"(max regression {args.max_regression:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
