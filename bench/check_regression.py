#!/usr/bin/env python3
"""Perf-trajectory regression gate for rpcg-bench-report/v1 snapshots.

Compares two run_all reports (e.g. the committed BENCH_PR<N-1>.json baseline
against the candidate BENCH_PR<N>.json) and fails when any bench present in
BOTH reports regressed by more than --max-regression percent in wall time.
Benches that appear in only one snapshot never fail the gate on *timing*: a
candidate-only bench is NEW (warned, not gated — freshly landed benches such
as the pipelined suite must be able to enter the trajectory), a
baseline-only bench is DROPPED (warned, not gated). Failed benches
(exit_code != 0) in the candidate always fail the gate, NEW ones included.

When a bench keeps its name but its workload deliberately grows (a new
sweep dimension, an extra study), the timing comparison is apples to
oranges: pass --allow-workload-change BENCH=REASON to waive the timing
gate for that bench in this comparison. The reason is mandatory (like
rpcg-lint's reasoned allows) and is printed next to the WAIVED verdict;
a waived bench that *fails* still fails the gate.

Report loading and per-bench validity live in bench/report_tools.py (the
shared trajectory reader); this script only adds the gate policy.

Usage:
  bench/check_regression.py BASELINE.json CANDIDATE.json [--max-regression 15]
      [--allow-workload-change BENCH=REASON ...]

Exit code 0 = gate passed, 1 = regression or failed bench, 2 = bad input.
"""

import argparse
import sys

import report_tools


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-regression", type=float, default=15.0,
                        help="max allowed wall-time regression in percent "
                             "(default: 15)")
    parser.add_argument("--allow-workload-change", action="append",
                        default=[], metavar="BENCH=REASON",
                        help="waive the timing gate for BENCH because its "
                             "workload deliberately changed; the reason is "
                             "mandatory and printed with the verdict")
    args = parser.parse_args()

    waived = {}
    for entry in args.allow_workload_change:
        bench_name, sep, reason = entry.partition("=")
        if not sep or not reason.strip():
            print(f"check_regression: --allow-workload-change '{entry}' "
                  "needs BENCH=REASON (the reason is mandatory)",
                  file=sys.stderr)
            return 2
        waived[bench_name] = reason.strip()

    try:
        baseline = report_tools.load_bench_report(args.baseline)
        candidate = report_tools.load_bench_report(args.candidate)
    except report_tools.ReportError as e:
        print(f"check_regression: {e}", file=sys.stderr)
        return 2
    base = report_tools.bench_map(baseline)
    cand = report_tools.bench_map(candidate)

    failures = []
    for name in sorted(set(base) | set(cand)):
        if name in cand and cand[name]["exit_code"] != 0:
            # A failed candidate bench always fails the gate, baseline or not
            # (a freshly landed bench that crashes must not ship as "NEW").
            failures.append(f"{name} failed "
                            f"(exit code {cand[name]['exit_code']})")
            print(f"  FAILED   {name}: exit code {cand[name]['exit_code']}")
            continue
        if name not in base:
            # Candidate-only: the suite grew; warn, never gate on timing.
            print(f"  NEW      {name}: {cand[name]['wall_seconds']:.2f}s "
                  "(no baseline, not gated)")
            continue
        if name not in cand:
            print(f"  DROPPED  {name} (baseline only, not gated)")
            continue
        b, c = base[name], cand[name]
        base_wall = report_tools.bench_wall_seconds(b)
        if base_wall is None:
            # A failed/zero-time baseline entry is no baseline at all (e.g.
            # exit 127 from a missing binary); report it, don't divide by it.
            print(f"  NOBASE   {name}: baseline invalid (exit "
                  f"{b['exit_code']}, {b['wall_seconds']:.2f}s); not gated")
            continue
        delta = 100.0 * (c["wall_seconds"] - base_wall) / base_wall
        if name in waived:
            print(f"  WAIVED   {name}: {base_wall:.2f}s -> "
                  f"{c['wall_seconds']:.2f}s ({delta:+.1f}%) — workload "
                  f"changed: {waived[name]}")
            continue
        verdict = "REGRESSED" if delta > args.max_regression else "ok"
        print(f"  {verdict:8s} {name}: {base_wall:.2f}s -> "
              f"{c['wall_seconds']:.2f}s ({delta:+.1f}%)")
        if delta > args.max_regression:
            failures.append(f"{name} regressed {delta:+.1f}% "
                            f"(limit {args.max_regression:.0f}%)")

    total_b = baseline.get("total_wall_seconds", 0.0)
    total_c = candidate.get("total_wall_seconds", 0.0)
    if total_b > 0:
        print(f"  total: {total_b:.2f}s -> {total_c:.2f}s "
              f"({100.0 * (total_c - total_b) / total_b:+.1f}%)")

    if failures:
        print("check_regression: GATE FAILED", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("check_regression: gate passed "
          f"(max regression {args.max_regression:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
