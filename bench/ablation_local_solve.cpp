// Ablation of the reconstruction's local solve (Sec. 6, "Avoiding loss of
// orthogonality"): the tolerance of the A_{If,If} solve controls how exactly
// the state is reconstructed and therefore the residual-difference metric of
// Eqn. 7. Sweeps the tolerance and compares against the exact (direct)
// solve.
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int matrix = static_cast<int>(o.get_int("matrix", 3));
  const int phi = static_cast<int>(o.get_int("phi", 3));

  const auto mat = repro::make_matrix(matrix, args.scale);
  char title[128];
  std::snprintf(title, sizeof title,
                "Local reconstruction solve ablation on %s (phi = psi = %d)",
                mat.id.c_str(), phi);
  print_header(title, args);
  std::printf("%-14s %14s %12s %14s %12s\n", "local rtol", "|Delta_ESR|",
              "iters", "recon time[s]", "total iters");

  for (const double rtol : {1e-6, 1e-8, 1e-10, 1e-12, 1e-14, 0.0}) {
    repro::ExperimentConfig cfg = args.config();
    cfg.local_rtol = rtol > 0.0 ? rtol : 1e-14;
    repro::ExperimentRunner runner(mat.matrix, cfg);
    // rtol == 0 marks the exact (direct LDLt) solve.
    engine::SolveReport res;
    if (rtol == 0.0) {
      const FailureSchedule schedule = FailureSchedule::contiguous(
          runner.failure_iteration(0.5),
          runner.first_rank(repro::FailureLocation::kCenter), phi);
      engine::SolverConfig c = runner.base_config();
      c.recovery = RecoveryMethod::kEsr;
      c.phi = phi;
      c.esr.exact_local_solve = true;
      res = runner.run_solver("resilient-pcg", c, schedule, 7);
    } else {
      res = runner.run_with_failures(phi, phi, repro::FailureLocation::kCenter,
                                     0.5, 7);
    }
    const int local_iters =
        res.recoveries.empty() ? 0 : res.recoveries[0].stats.local_solve_iterations;
    char label[24];
    if (rtol == 0.0) {
      std::snprintf(label, sizeof label, "exact (LDLt)");
    } else {
      std::snprintf(label, sizeof label, "%.0e", rtol);
    }
    std::printf("%-14s %14.3e %12d %14.4f %12d\n", label,
                std::abs(res.delta_metric), local_iters,
                res.sim_time_phase[static_cast<int>(Phase::kRecovery)],
                res.iterations);
    std::fflush(stdout);
  }
  return 0;
}
