// Shared support for the reproduction benches — the merge of the former
// bench_common.hpp (option handling, table printing) and fig_common.hpp
// (the Figs. 1-3 driver), rebuilt on the engine API: problems come from the
// harness's ProblemBuilder-backed ExperimentRunner and every solve goes
// through the SolverRegistry.
//
// Every bench binary accepts
//   --scale S      problem size = paper size / S          (default 16)
//   --nodes N      simulated cluster size                 (default 128)
//   --reps R       repetitions per configuration          (default 3)
//   --noise CV     timing jitter coefficient of variation (default 0.02)
//   --matrices L   comma-separated matrix indices, e.g. 1,5,8 (default all)
//   --precond P    preconditioner registry key            (default bjacobi)
//   --strategy S   backup strategy name                   (default paper-alternating)
//   --exec E       host execution policy: sequential | threaded (default sequential)
//   --workers N    worker cap for --exec=threaded; 0 = hardware concurrency
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "repro/harness.hpp"
#include "repro/matrices.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace rpcg::bench {

struct CommonArgs {
  double scale = 16.0;
  int nodes = 128;
  int reps = 3;
  double noise = 0.02;
  std::vector<long> matrices{1, 2, 3, 4, 5, 6, 7, 8};
  std::string precond = "bjacobi";
  BackupStrategy strategy = BackupStrategy::kPaperAlternating;
  ExecutionPolicy exec;

  static CommonArgs parse(int argc, char** argv) {
    const Options o(argc, argv);
    CommonArgs a;
    a.scale = o.get_double("scale", a.scale);
    a.nodes = static_cast<int>(o.get_int("nodes", a.nodes));
    a.reps = static_cast<int>(o.get_int("reps", a.reps));
    a.noise = o.get_double("noise", a.noise);
    a.matrices = o.get_int_list("matrices", a.matrices);
    a.precond = o.get_string("precond", a.precond);
    a.strategy = o.get_enum<BackupStrategy>("strategy", a.strategy);
    a.exec.mode = o.get_enum<ExecMode>("exec", a.exec.mode);
    a.exec.workers = static_cast<int>(o.get_int("workers", a.exec.workers));
    return a;
  }

  [[nodiscard]] repro::ExperimentConfig config() const {
    repro::ExperimentConfig cfg;
    cfg.num_nodes = nodes;
    cfg.reps = reps;
    cfg.noise_cv = noise;
    cfg.precond = precond;
    cfg.strategy = strategy;
    cfg.exec = exec;
    return cfg;
  }
};

inline void print_header(const std::string& title, const CommonArgs& a) {
  std::printf("# %s\n", title.c_str());
  std::printf("# scale=1/%.0f of paper size, N=%d simulated nodes, reps=%d, "
              "noise cv=%.2f, times are model (simulated) seconds\n",
              a.scale, a.nodes, a.reps, a.noise);
}

inline void print_box(const char* label, const Summary& s) {
  std::printf("%-28s med=%9.4f  q1=%9.4f  q3=%9.4f  whiskers=[%9.4f, %9.4f]\n",
              label, s.median, s.q1, s.q3, s.whisker_lo, s.whisker_hi);
}

/// Shared driver for Figs. 1-3 of the paper: for one matrix and one failure
/// location, print the reference band, and for copies in {1,3,8} the box
/// statistics of failure-free runs (blue boxes) and runs with psi = phi
/// simultaneous failures at 20/50/80 % progress (orange boxes), plus the
/// relative overhead of the box medians.
inline int run_figure(int matrix_index, repro::FailureLocation loc, int argc,
                      char** argv, const char* figure_name) {
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const std::vector<long> phis = o.get_int_list("phis", {1, 3, 8});

  const auto mat = repro::make_matrix(matrix_index, args.scale);
  repro::ExperimentRunner runner(mat.matrix, args.config());

  char title[160];
  std::snprintf(title, sizeof title, "%s: %s, failures at %s", figure_name,
                mat.id.c_str(), repro::to_string(loc).c_str());
  print_header(title, args);

  std::vector<double> ref_samples;
  for (int r = 0; r < args.reps; ++r)
    ref_samples.push_back(runner.run_reference(100 + r).sim_time);
  const Summary ref = summarize(ref_samples);
  std::printf("reference PCG: %s s (band: +/- one stddev)\n\n",
              mean_pm_std(ref, 4).c_str());

  for (const long phi : phis) {
    std::vector<double> undisturbed;
    for (int r = 0; r < args.reps; ++r)
      undisturbed.push_back(
          runner.run_undisturbed(static_cast<int>(phi), 200 + r).sim_time);
    const Summary u = summarize(undisturbed);

    std::vector<double> with_failures;
    int seed = 300;
    for (const double progress : {0.2, 0.5, 0.8}) {
      for (int r = 0; r < args.reps; ++r) {
        with_failures.push_back(
            runner
                .run_with_failures(static_cast<int>(phi), static_cast<int>(phi),
                                   loc, progress,
                                   static_cast<std::uint64_t>(seed++))
                .sim_time);
      }
    }
    const Summary w = summarize(with_failures);

    std::printf("copies/failures = %ld\n", phi);
    char label[64];
    std::snprintf(label, sizeof label, "  no failures (blue box)");
    print_box(label, u);
    std::snprintf(label, sizeof label, "  %ld failures (orange box)", phi);
    print_box(label, w);
    std::printf("  relative overhead: undisturbed %+.1f%%, with failures %+.1f%%\n\n",
                repro::overhead_pct(u.median, ref.mean),
                repro::overhead_pct(w.median, ref.mean));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace rpcg::bench
