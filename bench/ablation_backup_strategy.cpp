// Ablation of the backup-target strategy (the paper's Eqn. 5 heuristic vs
// the ring generalization of Chen's scheme, random placement, and the
// greedy sparsity-adaptive selection named as future work in Sec. 8):
// extra elements, extra latency messages, and per-iteration model overhead.
#include <cstdio>

#include "bench_support.hpp"
#include "core/redundancy.hpp"
#include "sim/dist_matrix.hpp"

int main(int argc, char** argv) {
  using namespace rpcg;
  using namespace rpcg::bench;
  const CommonArgs args = CommonArgs::parse(argc, argv);
  const Options o(argc, argv);
  const int phi = static_cast<int>(o.get_int("phi", 3));
  print_header("Backup-target strategy ablation (phi = 3)", args);
  std::printf("%-4s %-18s %14s %12s %14s\n", "ID", "strategy", "extra elems",
              "extra lat.", "overhead [s]");

  const CommModel model{CommParams{}};
  for (const long idx : args.matrices) {
    const auto mat = repro::make_matrix(static_cast<int>(idx), args.scale);
    const Partition part = Partition::block_rows(mat.matrix.rows(), args.nodes);
    const DistMatrix dist = DistMatrix::distribute(mat.matrix, part);
    for (const BackupStrategy strat :
         {BackupStrategy::kPaperAlternating, BackupStrategy::kRing,
          BackupStrategy::kRandom, BackupStrategy::kGreedyOverlap}) {
      const auto scheme =
          RedundancyScheme::build(dist.scatter_plan(), part, phi, strat, 42);
      std::printf("%-4s %-18s %14lld %12d %14.3e\n", mat.id.c_str(),
                  to_string(strat).c_str(),
                  static_cast<long long>(scheme.total_extra_elements()),
                  scheme.extra_latency_messages(),
                  scheme.per_iteration_overhead(model));
    }
    std::fflush(stdout);
  }
  return 0;
}
