# Translates the RPCG_SANITIZE cache variable ("address;undefined", comma
# also accepted) into global -fsanitize compile and link flags. Applied
# globally rather than per-target so the library, tests, examples, and
# benches all agree on the instrumented ABI.

if(NOT RPCG_SANITIZE)
  return()
endif()

string(REPLACE "," ";" _rpcg_sanitizers "${RPCG_SANITIZE}")

set(_rpcg_known address undefined thread leak memory)
foreach(_san IN LISTS _rpcg_sanitizers)
  if(NOT _san IN_LIST _rpcg_known)
    message(FATAL_ERROR "Unknown sanitizer '${_san}' in RPCG_SANITIZE; known: ${_rpcg_known}")
  endif()
endforeach()

if("thread" IN_LIST _rpcg_sanitizers AND "address" IN_LIST _rpcg_sanitizers)
  message(FATAL_ERROR "RPCG_SANITIZE: thread and address sanitizers are mutually exclusive")
endif()

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  message(WARNING "RPCG_SANITIZE is only supported with GCC/Clang; ignoring '${RPCG_SANITIZE}'")
  return()
endif()

string(JOIN "," _rpcg_fsanitize ${_rpcg_sanitizers})
message(STATUS "Sanitizers enabled: -fsanitize=${_rpcg_fsanitize}")

add_compile_options(-fsanitize=${_rpcg_fsanitize} -fno-omit-frame-pointer)
add_link_options(-fsanitize=${_rpcg_fsanitize})
