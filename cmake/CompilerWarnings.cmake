# Defines rpcg::warnings, an interface target that pins the project-wide
# strict warning set. Link it PRIVATE into every in-repo target; it
# intentionally does not propagate to consumers. (The language standard is
# pinned once, globally, in the root CMakeLists.)

add_library(rpcg_warnings INTERFACE)
add_library(rpcg::warnings ALIAS rpcg_warnings)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  # -Wshadow: a shadowed variable in a numeric kernel (an inner `r` hiding
  # the residual, a loop `i` hiding a node id) is a classic silent-wrong-
  # answer bug; the tree compiles clean under it, keep it that way.
  target_compile_options(rpcg_warnings INTERFACE -Wall -Wextra -Wshadow)
  if(RPCG_WERROR)
    target_compile_options(rpcg_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(rpcg_warnings INTERFACE /W4)
  if(RPCG_WERROR)
    target_compile_options(rpcg_warnings INTERFACE /WX)
  endif()
endif()
